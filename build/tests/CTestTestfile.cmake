# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_numerics[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_hls_platform[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_anomaly[1]_include.cmake")
include("/root/repo/build/tests/test_usecases[1]_include.cmake")
include("/root/repo/build/tests/test_sdk[1]_include.cmake")
include("/root/repo/build/tests/test_dosa[1]_include.cmake")
include("/root/repo/build/tests/test_wrf_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_model[1]_include.cmake")
include("/root/repo/build/tests/test_canonicalize[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
add_test(basecamp_cli_targets "/root/repo/build/tools/basecamp" "targets")
set_tests_properties(basecamp_cli_targets PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(basecamp_cli_dialects "/root/repo/build/tools/basecamp" "dialects")
set_tests_properties(basecamp_cli_dialects PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(basecamp_cli_compile "/root/repo/build/tools/basecamp" "compile" "/root/repo/tests/data/dot.ekl" "--extent" "i=64" "--run")
set_tests_properties(basecamp_cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(basecamp_cli_compile_fixed "/root/repo/build/tools/basecamp" "compile" "/root/repo/tests/data/dot.ekl" "--extent" "i=64" "--format=fixed<16,12>" "--emit=system")
set_tests_properties(basecamp_cli_compile_fixed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(basecamp_cli_bad_command "/root/repo/build/tools/basecamp" "frobnicate")
set_tests_properties(basecamp_cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
