file(REMOVE_RECURSE
  "CMakeFiles/test_sdk.dir/test_sdk.cpp.o"
  "CMakeFiles/test_sdk.dir/test_sdk.cpp.o.d"
  "test_sdk"
  "test_sdk.pdb"
  "test_sdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
