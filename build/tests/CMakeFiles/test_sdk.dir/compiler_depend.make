# Empty compiler generated dependencies file for test_sdk.
# This may be replaced when dependencies are built.
