# Empty compiler generated dependencies file for test_dosa.
# This may be replaced when dependencies are built.
