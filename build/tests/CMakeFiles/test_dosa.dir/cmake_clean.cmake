file(REMOVE_RECURSE
  "CMakeFiles/test_dosa.dir/test_dosa.cpp.o"
  "CMakeFiles/test_dosa.dir/test_dosa.cpp.o.d"
  "test_dosa"
  "test_dosa.pdb"
  "test_dosa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dosa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
