# Empty compiler generated dependencies file for test_wrf_workflow.
# This may be replaced when dependencies are built.
