file(REMOVE_RECURSE
  "CMakeFiles/test_wrf_workflow.dir/test_wrf_workflow.cpp.o"
  "CMakeFiles/test_wrf_workflow.dir/test_wrf_workflow.cpp.o.d"
  "test_wrf_workflow"
  "test_wrf_workflow.pdb"
  "test_wrf_workflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrf_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
