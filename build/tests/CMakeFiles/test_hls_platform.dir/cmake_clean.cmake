file(REMOVE_RECURSE
  "CMakeFiles/test_hls_platform.dir/test_hls_platform.cpp.o"
  "CMakeFiles/test_hls_platform.dir/test_hls_platform.cpp.o.d"
  "test_hls_platform"
  "test_hls_platform.pdb"
  "test_hls_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
