# Empty compiler generated dependencies file for test_hls_platform.
# This may be replaced when dependencies are built.
