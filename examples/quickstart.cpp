// Quickstart: compile the paper's Fig. 3 RRTMG kernel from EVEREST Kernel
// Language source down to an FPGA system architecture, inspect every
// intermediate (teil IR, HLS report, Olympus estimate), check numerical
// correctness against the reference, and run it on the Alveo u55c model.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>

#include "frontend/ekl_parser.hpp"
#include "platform/xrt.hpp"
#include "sdk/basecamp.hpp"
#include "support/stats.hpp"
#include "transforms/ekl_eval.hpp"
#include "transforms/teil_eval.hpp"
#include "usecases/rrtmg.hpp"

namespace rr = everest::usecases::rrtmg;

int main() {
  // 1. Problem: the RRTMG major-absorber optical-depth kernel (Fig. 3).
  rr::Config config;
  config.ncells = 256;
  config.ng = 16;
  rr::Data data = rr::make_data(config);

  std::printf("== EVEREST SDK quickstart ==\n\n");
  std::printf("EKL source (%zu lines):\n%s\n",
              everest::frontend::count_ekl_lines(rr::ekl_source()),
              rr::ekl_source().c_str());

  // 2. Compile through basecamp: EKL -> teil -> loops -> HLS -> Olympus.
  everest::sdk::Basecamp basecamp;
  everest::sdk::CompileOptions options;
  auto compiled =
      basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data), options);
  if (!compiled) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.error().message.c_str());
    return 1;
  }

  std::printf("pipeline stages:\n");
  for (const auto &t : compiled->timings)
    std::printf("  %-22s %8.3f ms\n", t.stage.c_str(), t.ms);

  std::printf("\n%s\n", everest::hls::render_report(compiled->kernel).c_str());

  const auto &est = compiled->estimate;
  std::printf("Olympus system estimate on %s (replicas=%d):\n",
              compiled->device.name.c_str(), est.replicas);
  std::printf("  compute %.1f us | memory %.1f us | total %.1f us\n",
              est.compute_us, est.memory_us, est.total_us);
  std::printf("  effective bandwidth %.1f GB/s | utilization %.1f%%\n\n",
              est.effective_bandwidth_gbps, est.utilization * 100.0);

  // 3. Numerical check: compiled TeIL vs reference loops.
  auto bindings = rr::bindings(data);
  auto lowered = everest::transforms::evaluate_teil(*compiled->teil_ir,
                                                    bindings.inputs);
  if (!lowered) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 lowered.error().message.c_str());
    return 1;
  }
  auto reference = rr::reference_tau(data);
  double err = everest::support::max_abs_diff(lowered->at("tau").data(),
                                              reference.data());
  std::printf("max |compiled - reference| = %.3e %s\n", err,
              err < 1e-9 ? "(OK)" : "(MISMATCH!)");

  // 4. Deploy on the simulated u55c through the XRT-like runtime.
  everest::platform::Device device(compiled->device);
  auto us = basecamp.deploy_and_run(device, *compiled);
  if (!us) {
    std::fprintf(stderr, "deploy failed: %s\n", us.error().message.c_str());
    return 1;
  }
  std::printf(
      "\ndevice run: %.1f us end-to-end (%.1f us transfers, %.1f us compute, "
      "%lld kernel launches)\n",
      *us, device.stats().transfer_us, device.stats().compute_us,
      static_cast<long long>(device.stats().kernel_launches));
  return err < 1e-9 ? 0 : 1;
}
