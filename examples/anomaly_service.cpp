// Anomaly-detection service example (paper §VII): the model-selection node
// searches detector families + hyperparameters with TPE, then the detection
// node scores a live stream and emits the JSON contract, refitting
// continuously.
//
//   $ ./examples/anomaly_service

#include <cstdio>

#include "anomaly/service.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace ea = everest::anomaly;

namespace {

/// Sensor stream: 4 correlated channels with injected faults.
struct SensorData {
  ea::Table rows;
  std::vector<std::size_t> faults;
};

SensorData make_stream(std::size_t n, std::uint64_t seed) {
  everest::support::Pcg32 rng(seed);
  SensorData data;
  for (std::size_t i = 0; i < n; ++i) {
    double base = rng.normal(0.0, 1.0);
    ea::Row row{base + rng.normal(0, 0.2), base * 0.8 + rng.normal(0, 0.2),
                rng.normal(5.0, 0.5), rng.normal(-2.0, 0.3)};
    if (rng.uniform() < 0.03) {  // fault: one channel breaks correlation
      row[static_cast<std::size_t>(rng.bounded(4))] += rng.uniform() < 0.5 ? 6.0 : -6.0;
      data.faults.push_back(i);
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

}  // namespace

int main() {
  std::printf("== EVEREST anomaly detection service ==\n\n");

  // 1. Model-selection node: AutoML over detector families with TPE.
  auto train = make_stream(1200, 42);
  ea::SelectionConfig config;
  config.max_trials = 60;
  config.contamination =
      static_cast<double>(train.faults.size()) / train.rows.size();
  auto selection = ea::select_model(train.rows, train.faults, config);
  if (!selection) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selection.error().message.c_str());
    return 1;
  }
  std::printf("model selection (%d trials): best = %s  F1 = %.3f\n",
              config.max_trials, selection->model.c_str(), selection->best_f1);
  for (const auto &[k, v] : selection->hyperparams)
    std::printf("  %s = %g\n", k.c_str(), v);

  // 2. Detection node: deploy the winner on a live stream.
  auto detector =
      ea::make_detector(selection->model, selection->hyperparams, 7);
  if (!detector) return 1;
  ea::DetectionNode node(std::move(*detector), config.contamination);
  if (!node.fit(train.rows).is_ok()) return 1;

  std::printf("\nstreaming detection (5 batches of 200):\n");
  double f1_sum = 0;
  for (int batch = 0; batch < 5; ++batch) {
    auto live = make_stream(200, 100 + static_cast<std::uint64_t>(batch));
    auto doc = node.process(live.rows);
    if (!doc) {
      std::fprintf(stderr, "detection failed: %s\n",
                   doc.error().message.c_str());
      return 1;
    }
    std::vector<std::size_t> flagged;
    for (std::size_t i = 0; i < (*doc)["anomalies"].size(); ++i)
      flagged.push_back(static_cast<std::size_t>((*doc)["anomalies"][i].as_int()));
    double f1 = everest::support::score_detection(flagged, live.faults).f1;
    f1_sum += f1;
    std::printf("  batch %d: %s  (F1 %.2f)\n", batch, doc->dump().c_str(), f1);
  }
  std::printf("\nmean streaming F1: %.3f\n", f1_sum / 5.0);
  return 0;
}
