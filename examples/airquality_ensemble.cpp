// Air-quality monitoring example (paper §II-C / §VIII): ensemble weather
// forecasts, observation-forced correction, ADMS-like dispersion, and the
// daily emission-reduction decision with its cost consequences.
//
//   $ ./examples/airquality_ensemble

#include <cstdio>

#include "support/table.hpp"
#include "usecases/airquality.hpp"

namespace aq = everest::usecases::airquality;

int main() {
  std::printf("== Air-quality impact forecasting (72h horizon) ==\n\n");

  everest::support::Table table({"ensemble", "wind RMSE [m/s]",
                                 "reduction days", "missed peaks",
                                 "false alarms", "avg cost [kEUR]"});
  for (int ensemble : {1, 3, 5, 9}) {
    double rmse = 0, cost = 0;
    int reductions = 0, misses = 0, alarms = 0;
    const int runs = 40;
    for (int seed = 0; seed < runs; ++seed) {
      aq::Config config;
      config.ensemble_size = ensemble;
      config.seed = 7000 + static_cast<std::uint64_t>(seed);
      auto report = aq::run_scenario(config);
      if (!report) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     report.error().message.c_str());
        return 1;
      }
      rmse += report->forecast_rmse_speed;
      cost += report->cost_keur;
      reductions += report->reduction_days;
      misses += report->missed_peaks;
      alarms += report->false_alarms;
    }
    char r[32], c[32];
    std::snprintf(r, sizeof r, "%.3f", rmse / runs);
    std::snprintf(c, sizeof c, "%.1f", cost / runs);
    table.add_row({std::to_string(ensemble), r, std::to_string(reductions),
                   std::to_string(misses), std::to_string(alarms), c});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: wind RMSE and average decision cost fall as the\n"
      "ensemble grows; a reduction day costs 30 kEUR, a missed peak 120 kEUR.\n");
  return 0;
}
