// Traffic example (paper §II-D + §VIII): run the Fig. 4 ConDRust
// map-matching coordination program through the deterministic dfg executor,
// compare against full offline Viterbi, and let the compile-time partitioner
// decide which sub-kernels go to the FPGA.
//
//   $ ./examples/traffic_mapmatch

#include <cstdio>

#include "frontend/condrust_parser.hpp"
#include "platform/fault_injector.hpp"
#include "runtime/dfg_executor.hpp"
#include "support/table.hpp"
#include "transforms/dfg_partition.hpp"
#include "usecases/speednet.hpp"
#include "usecases/traffic.hpp"
#include "usecases/traffic_model.hpp"

namespace tr = everest::usecases::traffic;
namespace er = everest::runtime;
namespace et = everest::transforms;

int main() {
  auto net = tr::make_grid_network(12, 1.0, 5);
  auto trace = tr::make_trace(net, 400, 0.04, 11);
  std::printf("== Map matching on a %zu-segment grid, %zu noisy FCD points ==\n\n",
              net.segments.size(), trace.points.size());

  // 1. The ConDRust program (Fig. 4) into a dfg graph.
  std::printf("ConDRust source:%s\n", tr::mapmatch_condrust_source().c_str());
  auto module = everest::frontend::parse_condrust(tr::mapmatch_condrust_source());
  if (!module) {
    std::fprintf(stderr, "parse failed: %s\n", module.error().message.c_str());
    return 1;
  }

  // 2. Execute with 1 and 8 workers; ConDRust semantics guarantee identical
  // results.
  er::NodeRegistry registry;
  tr::register_mapmatch_operators(registry, net);
  std::map<std::string, er::Stream> inputs;
  inputs["points"] = tr::trace_to_stream(trace);

  auto seq = er::execute_dfg(*module.value(), registry, inputs, 1);
  auto par = er::execute_dfg(*module.value(), registry, inputs, 8);
  if (!seq || !par) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  bool deterministic = seq->at("best") == par->at("best");

  std::vector<int> streaming;
  for (const auto &rec : seq->at("best"))
    streaming.push_back(static_cast<int>(rec[0]));

  // 3. Full offline Viterbi for comparison.
  auto offline = tr::map_match(net, trace.points);
  if (!offline) {
    std::fprintf(stderr, "viterbi failed: %s\n", offline.error().message.c_str());
    return 1;
  }

  std::printf("streaming accuracy: %.1f%%   offline Viterbi: %.1f%%   "
              "deterministic across workers: %s\n\n",
              100.0 * tr::matching_accuracy(streaming, trace.true_segments),
              100.0 * tr::matching_accuracy(*offline, trace.true_segments),
              deterministic ? "yes" : "NO");

  // 3b. The same pipeline under seeded fault injection: node invocations
  // flake and fold steps die mid-stream, the executor retries and restores
  // checkpoints, and the result must still match the clean run exactly.
  everest::platform::FaultPlan fault_plan;
  fault_plan.node_fault_rate = 0.05;
  fault_plan.fold_fault_rate = 0.02;
  everest::platform::FaultInjector injector(/*seed=*/2026, fault_plan);
  er::DfgExecOptions faulted_options;
  faulted_options.workers = 8;
  faulted_options.faults = &injector;
  faulted_options.retry.max_attempts = 8;
  faulted_options.checkpoint.interval = 32;
  er::DfgRunStats resil_stats;
  auto faulted = er::execute_dfg(*module.value(), registry, inputs,
                                 faulted_options, &resil_stats);
  if (!faulted) {
    std::fprintf(stderr, "faulted execution did not recover: %s\n",
                 faulted.error().message.c_str());
    return 1;
  }
  bool recovered = faulted->at("best") == seq->at("best");
  std::printf("faulted run (seed %llu): %zu faults injected, %zu element "
              "retries,\n  %zu checkpoints saved, %zu restores, %zu elements "
              "replayed -> output %s\n\n",
              static_cast<unsigned long long>(injector.seed()),
              resil_stats.faults_injected, resil_stats.element_retries,
              resil_stats.checkpoints_saved, resil_stats.checkpoint_restores,
              resil_stats.elements_replayed,
              recovered ? "identical to the clean run" : "DIVERGED");
  deterministic = deterministic && recovered;

  // 4. Compile-time CPU/FPGA placement of the sub-kernels (costs measured
  // offline; candidates is HLS-friendly, folds stay on CPU).
  std::map<std::string, et::NodeCost> costs;
  costs["candidates"] = {4.0, 0.25, 180'000, 400.0 * 96};
  costs["emission_score"] = {0.8, 0.1, 60'000, 400.0 * 96};
  costs["greedy_pick"] = {0.2, 0.15, 30'000, 400.0 * 8};
  costs["viterbi_step"] = {1.5, 1.5, 0, 400.0 * 96};
  costs["decode"] = {0.1, 0.2, 20'000, 8.0};
  auto placement = et::partition_dfg(*module.value(), costs);
  if (!placement) {
    std::fprintf(stderr, "partition failed: %s\n",
                 placement.error().message.c_str());
    return 1;
  }
  everest::support::Table table({"sub-kernel", "placement"});
  for (const auto &[name, where] : placement->placement) {
    if (name != "__host") table.add_row({name, where});
  }
  std::printf("%s\npredicted latency %.2f ms, %lld LUTs (%zu assignments "
              "explored)\n\n",
              table.render().c_str(), placement->predicted_ms,
              static_cast<long long>(placement->luts_used),
              placement->explored);

  // 5. The daily model computation: ODM demand -> macroscopic parameters
  // (speed/flow/intensity per 15-minute interval) + per-segment prediction
  // coefficients; plus the CNN speed predictor over yesterday's profile.
  auto odm = tr::make_odm(net, 8000.0, 21);
  auto model = tr::build_model(net, odm, 22);
  if (!model) {
    std::fprintf(stderr, "traffic model failed: %s\n",
                 model.error().message.c_str());
    return 1;
  }
  // Busiest segment at the evening rush.
  std::size_t busiest = 0;
  for (std::size_t s = 0; s < model->segments.size(); ++s) {
    if (model->segments[s].flow[70] > model->segments[busiest].flow[70])
      busiest = s;
  }
  const auto &state = model->segments[busiest];
  std::printf("busiest segment #%zu at 17:30: flow %.0f veh/15min, "
              "speed %.1f km/h, intensity %.1f\n",
              busiest, state.flow[70], state.speed_kmh[70],
              state.intensity[70]);
  std::printf("prediction coefficients: c0=%.1f c1=%.2f c2=%.2f c3=%.2f "
              "c4=%.2f  (predict(17:30) = %.1f km/h)\n",
              model->coeffs[busiest].c[0], model->coeffs[busiest].c[1],
              model->coeffs[busiest].c[2], model->coeffs[busiest].c[3],
              model->coeffs[busiest].c[4], model->coeffs[busiest].predict(70));

  auto cnn = everest::usecases::speednet::load_model(42);
  if (cnn) {
    std::vector<double> temp(96, 14.0), precip(96, 0.0);
    auto input = everest::usecases::speednet::make_input(state.speed_kmh, temp,
                                                         precip);
    auto next = everest::usecases::speednet::predict(*cnn, input);
    if (next) {
      std::printf("CNN (untrained demo weights) next-hour outputs: "
                  "%.1f %.1f %.1f %.1f\n",
                  (*next)[0], (*next)[1], (*next)[2], (*next)[3]);
    }
  }
  return deterministic ? 0 : 1;
}
