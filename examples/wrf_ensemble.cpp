// Accelerated WRF ensemble example (paper §VIII): derive the RRTMG radiation
// speedup from the actual compiled kernel (basecamp + HLS + Olympus vs the
// measured CPU reference), then run the WRF ensemble workflow on the
// resource manager with and without FPGA nodes.
//
//   $ ./examples/wrf_ensemble

#include <chrono>
#include <cstdio>

#include "sdk/basecamp.hpp"
#include "support/table.hpp"
#include "usecases/rrtmg.hpp"
#include "usecases/wrf_workflow.hpp"

namespace rr = everest::usecases::rrtmg;
namespace wrf = everest::usecases::wrf;

int main() {
  std::printf("== Accelerated WRF ensemble forecasting ==\n\n");

  // 1. Measure the CPU radiation kernel and compile its FPGA counterpart.
  rr::Config config;
  config.ncells = 2048;
  config.ng = 16;
  rr::Data data = rr::make_data(config);

  auto start = std::chrono::steady_clock::now();
  auto tau = rr::reference_tau(data);
  auto stop = std::chrono::steady_clock::now();
  double cpu_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  (void)tau;

  everest::sdk::Basecamp basecamp;
  everest::sdk::CompileOptions options;
  options.olympus.replicas = 2;
  auto compiled =
      basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data), options);
  if (!compiled) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.error().message.c_str());
    return 1;
  }
  double fpga_ms = compiled->estimate.total_us / 1000.0;
  double speedup = cpu_ms / fpga_ms;
  std::printf("RRTMG radiation step (%lld cells x %lld g-points):\n",
              static_cast<long long>(config.ncells),
              static_cast<long long>(config.ng));
  std::printf("  CPU reference %.2f ms | u55c system %.2f ms | speedup %.1fx\n\n",
              cpu_ms, fpga_ms, speedup);

  // 2. The ensemble workflow across cluster shapes.
  everest::support::Table table({"FPGA nodes", "makespan [ms]",
                                 "CPU-only [ms]", "workflow speedup",
                                 "radiation tasks on FPGA"});
  for (int fpga_nodes : {0, 1, 2, 4}) {
    wrf::WorkflowConfig wf;
    wf.ensemble_members = 8;
    wf.timesteps = 12;
    wf.radiation_speedup = speedup;
    wf.nodes = 8;
    wf.fpga_nodes = fpga_nodes;
    auto report = wrf::run_ensemble(wf);
    if (!report) {
      std::fprintf(stderr, "workflow failed: %s\n",
                   report.error().message.c_str());
      return 1;
    }
    char m[32], c[32], s[32];
    std::snprintf(m, sizeof m, "%.0f", report->makespan_ms);
    std::snprintf(c, sizeof c, "%.0f", report->cpu_only_makespan_ms);
    std::snprintf(s, sizeof s, "%.2fx", report->speedup);
    table.add_row({std::to_string(fpga_nodes), m, c, s,
                   std::to_string(report->radiation_tasks_on_fpga)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape: radiation is ~30%% of a timestep, so Amdahl caps the workflow\n"
      "speedup around 1.3x; the first FPGA node captures most of it because\n"
      "the accelerated kernel is so fast that one card serves the whole\n"
      "ensemble's radiation tasks — state-transfer time eats the remainder.\n");
  return 0;
}
