// Renewable-energy prediction example (paper §II-B): backtest the Kernel
// Ridge wind-farm power forecaster against persistence and raw-forecast
// baselines, sweeping the WRF ensemble size — the §VIII claim that more and
// fresher WRF runs improve the prediction.
//
//   $ ./examples/energy_forecast

#include <cstdio>

#include "support/table.hpp"
#include "usecases/energy.hpp"

namespace en = everest::usecases::energy;

int main() {
  std::printf("== Wind-farm energy prediction backtest ==\n");
  std::printf("(synthetic site, 120 days hourly, test on last 20 days)\n\n");

  everest::support::Table table({"ensemble", "MAE model [MW]",
                                 "MAE raw forecast [MW]",
                                 "MAE persistence [MW]"});
  for (int ensemble : {1, 2, 3, 5, 8}) {
    auto result = en::backtest(24 * 120, ensemble, /*seed=*/42);
    if (!result) {
      std::fprintf(stderr, "backtest failed: %s\n",
                   result.error().message.c_str());
      return 1;
    }
    char model[32], raw[32], persist[32];
    std::snprintf(model, sizeof model, "%.3f", result->mae_model);
    std::snprintf(raw, sizeof raw, "%.3f", result->mae_forecast);
    std::snprintf(persist, sizeof persist, "%.3f", result->mae_persistence);
    table.add_row({std::to_string(ensemble), model, raw, persist});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: model < raw forecast < persistence, and the raw\n"
      "forecast improves with ensemble size (uncertainty averaging).\n");
  return 0;
}
