// Unit tests for the support substrate: Expected/Status, RNG, strings, JSON,
// tables, and statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "support/expected.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace es = everest::support;

TEST(Expected, HoldsValue) {
  es::Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  es::Expected<int> e(es::Error::make("boom", 3));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().message, "boom");
  EXPECT_EQ(e.error().code, 3);
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Status, OkAndFailure) {
  EXPECT_TRUE(es::Status::ok().is_ok());
  auto s = es::Status::failure("bad");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.message(), "bad");
}

TEST(Error, CodedFactories) {
  EXPECT_EQ(es::Error::invalid_argument("x").code_enum(),
            es::ErrorCode::InvalidArgument);
  EXPECT_EQ(es::Error::not_found("x").code_enum(), es::ErrorCode::NotFound);
  EXPECT_EQ(es::Error::unsupported("x").code_enum(),
            es::ErrorCode::Unsupported);
  EXPECT_EQ(es::Error::resource_exhausted("x").code_enum(),
            es::ErrorCode::ResourceExhausted);
  EXPECT_EQ(es::Error::internal("x").code_enum(), es::ErrorCode::Internal);
  EXPECT_STREQ(es::Error::not_found("x").code_name(), "not-found");
  // Legacy message-only construction keeps working and maps to Internal.
  EXPECT_EQ(es::Error::make("legacy").code_enum(), es::ErrorCode::Internal);
  // Unknown numeric codes fold to Internal without losing the raw value.
  es::Error raw = es::Error::make("raw", 42);
  EXPECT_EQ(raw.code, 42);
  EXPECT_EQ(raw.code_enum(), es::ErrorCode::Internal);
}

TEST(Error, WithContextChainsMessagesAndKeepsCode) {
  auto e = es::Error::not_found("no such kernel")
               .with_context("load_kernel")
               .with_context("basecamp");
  EXPECT_EQ(e.message, "basecamp: load_kernel: no such kernel");
  EXPECT_EQ(e.code_enum(), es::ErrorCode::NotFound);

  const es::Error base = es::Error::unsupported("posit<64,8>");
  es::Error wrapped = base.with_context("format");
  EXPECT_EQ(base.message, "posit<64,8>");  // lvalue overload copies
  EXPECT_EQ(wrapped.message, "format: posit<64,8>");
  EXPECT_EQ(wrapped.code_enum(), es::ErrorCode::Unsupported);
}

TEST(Status, FailureWithErrorCode) {
  auto s = es::Status::failure("nope", es::ErrorCode::Unsupported);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code_enum(), es::ErrorCode::Unsupported);
}

TEST(Rng, Deterministic) {
  es::Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  es::Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  es::Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BoundedIsUnbiasedish) {
  es::Pcg32 rng(11);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) counts[rng.bounded(5)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, NormalMoments) {
  es::Pcg32 rng(42);
  es::RunningStats st;
  for (int i = 0; i < 20000; ++i) st.push(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, DiscreteFollowsWeights) {
  es::Pcg32 rng(5);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) ones += rng.discrete(w) == 1;
  EXPECT_NEAR(ones / 20000.0, 0.75, 0.02);
}

TEST(Rng, SplitIndependence) {
  es::Pcg32 parent(9);
  auto child = parent.split();
  // Child stream should not equal the parent's continuation.
  int same = 0;
  for (int i = 0; i < 32; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 3);
}

TEST(Strings, SplitJoinTrim) {
  auto parts = es::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(es::join({"x", "y"}, "::"), "x::y");
  EXPECT_EQ(es::trim("  hi \n"), "hi");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(es::starts_with("ekl.sum", "ekl."));
  EXPECT_TRUE(es::ends_with("ekl.sum", ".sum"));
  EXPECT_TRUE(es::is_identifier("tau_abs"));
  EXPECT_FALSE(es::is_identifier("9lives"));
  EXPECT_FALSE(es::is_identifier(""));
}

TEST(Strings, ReplaceAllAndFormat) {
  EXPECT_EQ(es::replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(es::format_bytes(4096), "4.00 KiB");
  EXPECT_EQ(es::format_double(0.5), "0.5");
}

TEST(Json, BuildAndDump) {
  es::Json j = es::Json::object();
  j.set("anomalies", es::Json::array());
  es::Json arr = es::Json::array();
  arr.push_back(3);
  arr.push_back(17);
  j.set("anomalies", std::move(arr));
  j.set("model", "isolation_forest");
  EXPECT_EQ(j.dump(), R"({"anomalies":[3,17],"model":"isolation_forest"})");
}

TEST(Json, ParseRoundTrip) {
  const char *text =
      R"({"a": 1.5, "b": [true, false, null], "c": {"nested": "x\ny"}})";
  auto parsed = es::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  auto reparsed = es::Json::parse(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(parsed->dump(), reparsed->dump());
  EXPECT_DOUBLE_EQ((*parsed)["a"].as_number(), 1.5);
  EXPECT_EQ((*parsed)["b"].size(), 3u);
  EXPECT_EQ((*parsed)["c"]["nested"].as_string(), "x\ny");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(es::Json::parse("{").has_value());
  EXPECT_FALSE(es::Json::parse("[1,]").has_value());
  EXPECT_FALSE(es::Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(es::Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(es::Json::parse("1 2").has_value());
}

TEST(Json, PrettyPrint) {
  auto j = es::Json::object();
  j.set("k", 1);
  EXPECT_EQ(j.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, MissingKeyIsNull) {
  auto j = es::Json::object();
  EXPECT_TRUE(j["nope"].is_null());
  EXPECT_FALSE(j.contains("nope"));
}

TEST(Table, RendersAligned) {
  es::Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"b", "20"});
  std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric cells are right-aligned: "20" ends at same column as "1.5".
  auto lines = es::split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(Stats, Basics) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(es::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(es::variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(es::median(xs), 3.0);
  EXPECT_DOUBLE_EQ(es::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(es::quantile(xs, 1.0), 5.0);
}

TEST(Stats, ErrorsMetrics) {
  std::vector<double> p{1, 2, 3}, t{1, 2, 5};
  EXPECT_NEAR(es::mae(p, t), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(es::rmse(p, t), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(es::max_abs_diff(p, t), 2.0);
}

TEST(Stats, Pearson) {
  std::vector<double> a{1, 2, 3, 4}, b{2, 4, 6, 8}, c{4, 3, 2, 1};
  EXPECT_NEAR(es::pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(es::pearson(a, c), -1.0, 1e-12);
  std::vector<double> constant{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(es::pearson(a, constant), 0.0);
}

TEST(Stats, DetectionScore) {
  auto s = es::score_detection({1, 2, 3}, {2, 3, 4});
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_NEAR(s.f1, 2.0 / 3.0, 1e-12);
}

TEST(Stats, RunningStatsMatchesBatch) {
  es::Pcg32 rng(3);
  std::vector<double> xs;
  es::RunningStats st;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal();
    xs.push_back(x);
    st.push(x);
  }
  EXPECT_NEAR(st.mean(), es::mean(xs), 1e-9);
  EXPECT_NEAR(st.variance(), es::variance(xs), 1e-9);
}
