// Tests for the lowering pipeline: EKL evaluation, ekl->teil, teil
// evaluation, cfdlang->teil, einsum extraction/ordering, loop lowering,
// base2 legalization, and dfg partitioning. Includes the Fig. 3 end-to-end
// equivalence property against the hand-written RRTMG reference.

#include <gtest/gtest.h>

#include "dialects/registry.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "transforms/base2_legalize.hpp"
#include "transforms/cfdlang_to_teil.hpp"
#include "transforms/dfg_partition.hpp"
#include "transforms/ekl_eval.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "runtime/dfg_executor.hpp"
#include "transforms/loop_eval.hpp"
#include "transforms/teil_eval.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"

namespace ef = everest::frontend;
namespace ei = everest::ir;
namespace en = everest::numerics;
namespace et = everest::transforms;
namespace rr = everest::usecases::rrtmg;

class TransformTest : public ::testing::Test {
protected:
  void SetUp() override {
    everest::dialects::register_everest_dialects(ctx_);
  }
  ei::Context ctx_;
};

// --------------------------------------------------------- EKL evaluation

TEST_F(TransformTest, EvalSimpleScale) {
  auto m = ef::parse_ekl(R"(
kernel scale
index i
input a[i]
b = a[i] * 2 + 1
output b
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{3}, std::vector<double>{1, 2, 3}));
  auto out = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &b = out->at("b");
  EXPECT_DOUBLE_EQ(b(0), 3.0);
  EXPECT_DOUBLE_EQ(b(2), 7.0);
}

TEST_F(TransformTest, EvalBroadcastOuter) {
  auto m = ef::parse_ekl(R"(
kernel outer
index i, j
input a[i]
input b[j]
c = a[i] * b[j]
output c
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{2}, std::vector<double>{2, 3}));
  bind.inputs.emplace("b", en::Tensor(en::Shape{3}, std::vector<double>{1, 10, 100}));
  auto out = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &c = out->at("c");
  EXPECT_EQ(c.shape(), (en::Shape{2, 3}));
  EXPECT_DOUBLE_EQ(c(1, 2), 300.0);
}

TEST_F(TransformTest, EvalSumReduction) {
  auto m = ef::parse_ekl(R"(
kernel dot
index i
input a[i]
input b[i]
d = sum(i) a[i] * b[i]
output d
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{3}, std::vector<double>{1, 2, 3}));
  bind.inputs.emplace("b", en::Tensor(en::Shape{3}, std::vector<double>{4, 5, 6}));
  auto out = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  EXPECT_DOUBLE_EQ(out->at("d").flat(0), 32.0);
}

TEST_F(TransformTest, EvalGatherSubscriptedSubscripts) {
  auto m = ef::parse_ekl(R"(
kernel g
index i
input table[k]
input sel[i]
v = table[sel[i]]
output v
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  et::EklBindings bind;
  bind.inputs.emplace("table",
                      en::Tensor(en::Shape{4}, std::vector<double>{10, 20, 30, 40}));
  bind.inputs.emplace("sel", en::Tensor(en::Shape{3}, std::vector<double>{2, 0, 3}));
  auto out = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &v = out->at("v");
  EXPECT_DOUBLE_EQ(v(0), 30.0);
  EXPECT_DOUBLE_EQ(v(1), 10.0);
  EXPECT_DOUBLE_EQ(v(2), 40.0);
}

TEST_F(TransformTest, EvalMissingInputFails) {
  auto m = ef::parse_ekl("kernel k\nindex i\ninput a[i]\nb = a * 1\noutput b\n");
  ASSERT_TRUE(m.has_value());
  auto out = et::evaluate_ekl(**m, {});
  EXPECT_FALSE(out.has_value());
}

TEST_F(TransformTest, EvalConflictingExtentsFail) {
  auto m = ef::parse_ekl(R"(
kernel k
index i
input a[i]
input b[i]
c = a + b
output c
)");
  ASSERT_TRUE(m.has_value());
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{3}));
  bind.inputs.emplace("b", en::Tensor(en::Shape{4}));
  EXPECT_FALSE(et::evaluate_ekl(**m, bind).has_value());
}

// ------------------------------------------------ Fig. 3 RRTMG end to end

TEST_F(TransformTest, RrtmgEklMatchesReference) {
  rr::Config cfg;
  cfg.ncells = 10;
  cfg.nbnd = 3;
  cfg.ng = 5;
  rr::Data data = rr::make_data(cfg);

  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value()) << m.error().message;
  ASSERT_TRUE(ctx_.verify(**m).is_ok()) << ctx_.verify(**m).message();

  auto out = et::evaluate_ekl(**m, rr::bindings(data));
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &tau = out->at("tau");
  en::Tensor ref = rr::reference_tau(data);
  ASSERT_EQ(tau.shape(), ref.shape());
  EXPECT_LT(everest::support::max_abs_diff(tau.data(), ref.data()), 1e-12);
}

TEST_F(TransformTest, RrtmgTeilLoweringMatchesReference) {
  rr::Config cfg;
  cfg.ncells = 8;
  cfg.nbnd = 2;
  cfg.ng = 4;
  cfg.seed = 7;
  rr::Data data = rr::make_data(cfg);

  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value()) << teil.error().message;
  ASSERT_TRUE(ctx_.verify(**teil).is_ok()) << ctx_.verify(**teil).message();

  auto out = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  en::Tensor ref = rr::reference_tau(data);
  EXPECT_LT(everest::support::max_abs_diff(out->at("tau").data(), ref.data()),
            1e-12);
}

// Property: ekl evaluation and teil lowering agree on random programs/data.
class EklTeilEquivalence : public TransformTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(EklTeilEquivalence, RandomData) {
  rr::Config cfg;
  cfg.ncells = 6;
  cfg.nbnd = 2;
  cfg.ng = 3;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  rr::Data data = rr::make_data(cfg);

  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);

  auto direct = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(direct.has_value());
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  auto lowered = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(lowered.has_value());
  EXPECT_LT(everest::support::max_abs_diff(direct->at("tau").data(),
                                           lowered->at("tau").data()),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EklTeilEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------- cfdlang -> teil

TEST_F(TransformTest, CfdlangMatmulLowersAndEvaluates) {
  auto m = ef::parse_cfdlang(R"(
program mm
input A : [2, 3]
input B : [3, 2]
output C = contract(outer(A, B), 1, 2)
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  auto teil = et::lower_cfdlang_to_teil(**m);
  ASSERT_TRUE(teil.has_value()) << teil.error().message;
  ASSERT_TRUE(ctx_.verify(**teil).is_ok()) << ctx_.verify(**teil).message();

  std::map<std::string, en::Tensor> inputs;
  inputs.emplace("A", en::Tensor(en::Shape{2, 3},
                                 std::vector<double>{1, 2, 3, 4, 5, 6}));
  inputs.emplace("B", en::Tensor(en::Shape{3, 2},
                                 std::vector<double>{7, 8, 9, 10, 11, 12}));
  auto out = et::evaluate_teil(**teil, inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &c = out->at("C");
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST_F(TransformTest, CfdlangTraceViaRepeatedLetters) {
  auto m = ef::parse_cfdlang(R"(
program tr
input A : [3, 3]
output t = contract(A, 0, 1)
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  auto teil = et::lower_cfdlang_to_teil(**m);
  ASSERT_TRUE(teil.has_value()) << teil.error().message;
  std::map<std::string, en::Tensor> inputs;
  inputs.emplace("A", en::Tensor(en::Shape{3, 3},
                                 std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
  auto out = et::evaluate_teil(**teil, inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  EXPECT_DOUBLE_EQ(out->at("t").flat(0), 15.0);
}

// ----------------------------------------------------- einsum extraction

TEST_F(TransformTest, ExtractAndReorderEinsum) {
  // Chain contraction a[i,j] * b[j,k] * c[k] summed over j,k: greedy order
  // should contract b*c first (small intermediate).
  auto m = ef::parse_ekl(R"(
kernel chain
index i, j, k
input a[i, j]
input b[j, k]
input c[k]
r = sum(j, k) a[i, j] * b[j, k] * c[k]
output r
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;

  et::EklBindings bind;
  everest::support::Pcg32 rng(99);
  en::Tensor a(en::Shape{40, 30}), b(en::Shape{30, 20}), c(en::Shape{20});
  for (auto &v : a.data()) v = rng.normal();
  for (auto &v : b.data()) v = rng.normal();
  for (auto &v : c.data()) v = rng.normal();
  bind.inputs.emplace("a", a);
  bind.inputs.emplace("b", b);
  bind.inputs.emplace("c", c);

  auto direct = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(direct.has_value());

  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  std::size_t raised = et::extract_einsums(**teil);
  EXPECT_EQ(raised, 1u);
  et::eliminate_dead_code(**teil);

  auto einsums = (*teil)->find_all("esn.einsum");
  ASSERT_EQ(einsums.size(), 1u);
  EXPECT_EQ(einsums[0]->num_operands(), 3u);
  ASSERT_TRUE(ctx_.verify(**teil).is_ok()) << ctx_.verify(**teil).message();

  auto naive = et::plan_einsum(*einsums[0], /*optimize=*/false);
  auto greedy = et::plan_einsum(*einsums[0], /*optimize=*/true);
  EXPECT_LT(greedy.estimated_flops, naive.estimated_flops);

  auto flops = et::lower_esn(**teil, /*optimize_order=*/true);
  ASSERT_TRUE(flops.has_value()) << flops.error().message;
  et::eliminate_dead_code(**teil);
  ASSERT_TRUE(ctx_.verify(**teil).is_ok()) << ctx_.verify(**teil).message();
  EXPECT_EQ((*teil)->find_all("esn.einsum").size(), 0u);
  EXPECT_GE((*teil)->find_all("teil.contract").size(), 2u);

  auto lowered = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(lowered.has_value()) << lowered.error().message;
  EXPECT_LT(everest::support::max_abs_diff(direct->at("r").data(),
                                           lowered->at("r").data()),
            1e-7);
}

TEST_F(TransformTest, DeadCodeElimination) {
  auto m = ef::parse_ekl(R"(
kernel dce
index i
input a[i]
unused = a * 3
b = a * 2
output b
)");
  ASSERT_TRUE(m.has_value());
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{2}));
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  std::size_t before = (*teil)->op_count();
  std::size_t removed = et::eliminate_dead_code(**teil);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ((*teil)->op_count(), before - removed);
  ASSERT_TRUE(ctx_.verify(**teil).is_ok());
}

// --------------------------------------------------------- teil -> loops

TEST_F(TransformTest, LoopLoweringStructure) {
  auto m = ef::parse_ekl(R"(
kernel dot
index i
input a[i]
input b[i]
d = sum(i) a[i] * b[i]
output d
)");
  ASSERT_TRUE(m.has_value());
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{16}));
  bind.inputs.emplace("b", en::Tensor(en::Shape{16}));
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  auto loops = et::lower_teil_to_loops(**teil);
  ASSERT_TRUE(loops.has_value()) << loops.error().message;
  ASSERT_TRUE(ctx_.verify(**loops).is_ok()) << ctx_.verify(**loops).message();

  // Expect loop nests with trip_count attributes and memref traffic.
  auto fors = (*loops)->find_all("scf.for");
  ASSERT_FALSE(fors.empty());
  for (auto *f : fors) EXPECT_GT(f->attr_int("trip_count"), 0);
  EXPECT_FALSE((*loops)->find_all("memref.load").empty());
  EXPECT_FALSE((*loops)->find_all("memref.store").empty());

  // Input/output buffers are tagged for Olympus.
  std::size_t io = 0;
  for (auto *alloc : (*loops)->find_all("memref.alloc")) {
    std::string kind = alloc->attr_string("kind", "");
    if (kind == "input" || kind == "output") ++io;
    EXPECT_GT(alloc->attr_int("bytes"), 0);
  }
  EXPECT_EQ(io, 3u);  // a, b in; d out
}

// ----------------------------------------------------------- base2 types

TEST_F(TransformTest, MakeFormatSpecs) {
  EXPECT_TRUE(et::make_format("f32").has_value());
  EXPECT_TRUE(et::make_format("fixed<16,8>").has_value());
  EXPECT_TRUE(et::make_format("float<5,10>").has_value());
  EXPECT_TRUE(et::make_format("posit<16,1>").has_value());
  EXPECT_FALSE(et::make_format("complex<2>").has_value());
  EXPECT_FALSE(et::make_format("fixed<1,0>").has_value());
}

TEST_F(TransformTest, AnnotateBase2RetypesTensors) {
  auto m = ef::parse_ekl("kernel k\nindex i\ninput a[i]\nb = a * 2\noutput b\n");
  ASSERT_TRUE(m.has_value());
  et::EklBindings bind;
  bind.inputs.emplace("a", en::Tensor(en::Shape{4}));
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  auto width = et::annotate_base2(**teil, "fixed<16,8>");
  ASSERT_TRUE(width.has_value()) << width.error().message;
  EXPECT_EQ(*width, 16);
  auto *input = (*teil)->find_first("teil.input");
  ASSERT_NE(input, nullptr);
  EXPECT_EQ(input->result(0)->type().str(), "tensor<4x!base2.fixed<16,8>>");
  EXPECT_EQ(input->attr_string("base2.format"), "fixed<16,8>");
}

TEST_F(TransformTest, QuantizedEvalDegradesGracefully) {
  rr::Config cfg;
  cfg.ncells = 6;
  cfg.nbnd = 2;
  cfg.ng = 3;
  rr::Data data = rr::make_data(cfg);
  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());

  auto exact = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(exact.has_value());

  auto fmt16 = et::make_format("fixed<16,12>");
  auto fmt8 = et::make_format("fixed<8,6>");
  ASSERT_TRUE(fmt16.has_value());
  ASSERT_TRUE(fmt8.has_value());
  auto q16 = et::evaluate_teil(**teil, bind.inputs, fmt16->get());
  auto q8 = et::evaluate_teil(**teil, bind.inputs, fmt8->get());
  ASSERT_TRUE(q16.has_value());
  ASSERT_TRUE(q8.has_value());

  double err16 = everest::support::max_abs_diff(exact->at("tau").data(),
                                                q16->at("tau").data());
  double err8 = everest::support::max_abs_diff(exact->at("tau").data(),
                                               q8->at("tau").data());
  EXPECT_GT(err16, 0.0);
  EXPECT_GT(err8, err16);  // fewer bits, more error
  EXPECT_LT(err16, 0.05);  // but 16-bit stays close
}

// -------------------------------------------------------- dfg partitioning

TEST_F(TransformTest, PartitionPrefersFpgaForComputeHeavy) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let a = heavy(xs);
    let b = light(a);
    return b;
}
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  std::map<std::string, et::NodeCost> costs;
  costs["heavy"] = {100.0, 5.0, 200'000, 1000.0};
  costs["light"] = {1.0, 1.6, 150'000, 1000.0};  // not worth offloading
  auto result = et::partition_dfg(**m, costs);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->placement.at("heavy"), "fpga");
  EXPECT_EQ(result->placement.at("light"), "cpu");
}

TEST_F(TransformTest, PartitionAvoidsPingPongTransfers) {
  // heavy1 -> light -> heavy2: even though light itself is faster on CPU,
  // leaving it between two FPGA stages would cost two extra PCIe crossings.
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let a = heavy1(xs);
    let b = light(a);
    let c = heavy2(b);
    return c;
}
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  std::map<std::string, et::NodeCost> costs;
  costs["heavy1"] = {100.0, 5.0, 200'000, 64.0e6};
  costs["light"] = {1.0, 1.2, 50'000, 64.0e6};  // 64 MB per batch boundary
  costs["heavy2"] = {100.0, 5.0, 200'000, 1.0e3};
  auto result = et::partition_dfg(**m, costs);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->placement.at("light"), "fpga");
}

TEST_F(TransformTest, PartitionHonorsLutBudget) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let a = big1(xs);
    let b = big2(a);
    return b;
}
)");
  ASSERT_TRUE(m.has_value());
  std::map<std::string, et::NodeCost> costs;
  costs["big1"] = {50.0, 1.0, 900'000, 10.0};
  costs["big2"] = {50.0, 1.0, 900'000, 10.0};
  et::PlacementBudget budget;
  budget.available_luts = 1'000'000;  // only one fits
  auto result = et::partition_dfg(**m, costs, budget);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  int on_fpga = (result->placement.at("big1") == "fpga") +
                (result->placement.at("big2") == "fpga");
  EXPECT_EQ(on_fpga, 1);
  EXPECT_LE(result->luts_used, budget.available_luts);
}

TEST_F(TransformTest, PartitionHonorsPinnedPlacement) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    #[cpu]
    let a = heavy(xs);
    return a;
}
)");
  ASSERT_TRUE(m.has_value());
  std::map<std::string, et::NodeCost> costs;
  costs["heavy"] = {100.0, 1.0, 1000, 10.0};
  auto result = et::partition_dfg(**m, costs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.at("heavy"), "cpu");
}

TEST_F(TransformTest, PartitionMissingCostFails) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let a = mystery(xs);
    return a;
}
)");
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(et::partition_dfg(**m, {}).has_value());
}

// -------------------------------------------------------------- flop count

TEST_F(TransformTest, TeilFlopCountPositive) {
  rr::Config cfg;
  rr::Data data = rr::make_data(cfg);
  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto teil = et::lower_ekl_to_teil(**m, rr::bindings(data));
  ASSERT_TRUE(teil.has_value());
  EXPECT_GT(et::teil_flop_count(**teil), 1000u);
}

// ---------------------------------------------------------------------
// Randomized differential testing: for ~50 seeded random elementwise EKL
// programs, the EKL evaluator, the TeIL evaluator (after lowering), the
// loop-IR interpreter (after a second lowering — the exact IR HLS sees),
// and the ConDRust dfg executor must agree elementwise to 1e-9.

namespace {

struct RandomExpr {
  enum class Tok { A, B, Const, Add, Sub, Mul };
  std::string text;  // EKL expression over a[i], b[i], and int constants
  std::vector<std::pair<Tok, double>> postfix;  // same expr, for the dfg node
  bool uses_input = false;
};

RandomExpr gen_expr(everest::support::Pcg32 &rng, int depth) {
  RandomExpr e;
  if (depth == 0 || rng.uniform() < 0.3) {
    double leaf = rng.uniform();
    if (leaf < 0.4) {
      e.text = "a[i]";
      e.postfix = {{RandomExpr::Tok::A, 0.0}};
      e.uses_input = true;
    } else if (leaf < 0.8) {
      e.text = "b[i]";
      e.postfix = {{RandomExpr::Tok::B, 0.0}};
      e.uses_input = true;
    } else {
      int k = 1 + static_cast<int>(rng.uniform() * 9.0);
      e.text = std::to_string(k);
      e.postfix = {{RandomExpr::Tok::Const, static_cast<double>(k)}};
    }
    return e;
  }
  RandomExpr lhs = gen_expr(rng, depth - 1);
  RandomExpr rhs = gen_expr(rng, depth - 1);
  double pick = rng.uniform();
  const char *op = pick < 0.34 ? "+" : pick < 0.67 ? "-" : "*";
  RandomExpr::Tok tok = pick < 0.34   ? RandomExpr::Tok::Add
                        : pick < 0.67 ? RandomExpr::Tok::Sub
                                      : RandomExpr::Tok::Mul;
  e.text = "(" + lhs.text + " " + op + " " + rhs.text + ")";
  e.postfix = lhs.postfix;
  e.postfix.insert(e.postfix.end(), rhs.postfix.begin(), rhs.postfix.end());
  e.postfix.push_back({tok, 0.0});
  e.uses_input = lhs.uses_input || rhs.uses_input;
  return e;
}

double eval_postfix(const RandomExpr &expr, double a, double b) {
  std::vector<double> stack;
  for (const auto &[tok, value] : expr.postfix) {
    switch (tok) {
      case RandomExpr::Tok::A: stack.push_back(a); break;
      case RandomExpr::Tok::B: stack.push_back(b); break;
      case RandomExpr::Tok::Const: stack.push_back(value); break;
      default: {
        double r = stack.back(); stack.pop_back();
        double l = stack.back(); stack.pop_back();
        stack.push_back(tok == RandomExpr::Tok::Add   ? l + r
                        : tok == RandomExpr::Tok::Sub ? l - r
                                                      : l * r);
      }
    }
  }
  return stack.back();
}

}  // namespace

TEST_F(TransformTest, DifferentialRandomEklAcrossAllEvaluators) {
  everest::support::Pcg32 rng(20260807);
  namespace er = everest::runtime;
  constexpr std::int64_t n = 16;
  constexpr int kCases = 50;
  for (int c = 0; c < kCases; ++c) {
    RandomExpr expr = gen_expr(rng, 2 + c % 2);
    if (!expr.uses_input) {  // keep the output a vector over i
      expr.text = "(" + expr.text + " + a[i])";
      expr.postfix.push_back({RandomExpr::Tok::A, 0.0});
      expr.postfix.push_back({RandomExpr::Tok::Add, 0.0});
    }
    std::string source = "kernel rnd" + std::to_string(c) +
                         "\nindex i\ninput a[i]\ninput b[i]\nc = " + expr.text +
                         "\noutput c\n";
    SCOPED_TRACE(source);

    et::EklBindings bind;
    en::Tensor a(en::Shape{n});
    en::Tensor b(en::Shape{n});
    for (auto &v : a.data()) v = rng.uniform() * 4.0 - 2.0;
    for (auto &v : b.data()) v = rng.uniform() * 4.0 - 2.0;
    bind.inputs.emplace("a", a);
    bind.inputs.emplace("b", b);

    auto m = ef::parse_ekl(source);
    ASSERT_TRUE(m.has_value()) << m.error().message;
    auto direct = et::evaluate_ekl(**m, bind);
    ASSERT_TRUE(direct.has_value()) << direct.error().message;
    const auto &ref = direct->at("c");
    ASSERT_EQ(ref.shape(), (en::Shape{n}));

    auto teil = et::lower_ekl_to_teil(**m, bind);
    ASSERT_TRUE(teil.has_value()) << teil.error().message;
    auto teil_out = et::evaluate_teil(**teil, bind.inputs);
    ASSERT_TRUE(teil_out.has_value()) << teil_out.error().message;

    auto loops = et::lower_teil_to_loops(**teil);
    ASSERT_TRUE(loops.has_value()) << loops.error().message;
    auto loops_out = et::evaluate_loops(**loops, bind.inputs);
    ASSERT_TRUE(loops_out.has_value()) << loops_out.error().message;

    er::NodeRegistry registry;
    registry.register_node("apply_expr", [expr](const auto &in) {
      return er::Record{eval_postfix(expr, (*in[0])[0], (*in[1])[0])};
    });
    auto graph = ef::parse_condrust(R"(
fn pipe(a: Stream<f64>, b: Stream<f64>) -> Stream<f64> {
    let c = apply_expr(a, b);
    return c;
}
)");
    ASSERT_TRUE(graph.has_value()) << graph.error().message;
    std::map<std::string, er::Stream> streams;
    for (std::int64_t i = 0; i < n; ++i) {
      streams["a"].push_back({a(i)});
      streams["b"].push_back({b(i)});
    }
    auto dfg_out = er::execute_dfg(**graph, registry, streams, /*workers=*/4);
    ASSERT_TRUE(dfg_out.has_value()) << dfg_out.error().message;
    ASSERT_EQ(dfg_out->at("c").size(), static_cast<std::size_t>(n));

    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(teil_out->at("c")(i), ref(i), 1e-9) << "teil, i=" << i;
      EXPECT_NEAR(loops_out->at("c")(i), ref(i), 1e-9) << "loops, i=" << i;
      EXPECT_NEAR(dfg_out->at("c")[static_cast<std::size_t>(i)][0], ref(i),
                  1e-9)
          << "dfg, i=" << i;
    }
  }
}

TEST_F(TransformTest, DifferentialRandomCfdlangMatmuls) {
  everest::support::Pcg32 rng(7);
  for (int c = 0; c < 10; ++c) {
    std::int64_t m = 2 + static_cast<std::int64_t>(rng.uniform() * 6.0);
    std::int64_t k = 2 + static_cast<std::int64_t>(rng.uniform() * 6.0);
    std::int64_t n = 2 + static_cast<std::int64_t>(rng.uniform() * 6.0);
    std::string source = "\nprogram p\ninput A : [" + std::to_string(m) + ", " +
                         std::to_string(k) + "]\ninput B : [" +
                         std::to_string(k) + ", " + std::to_string(n) +
                         "]\noutput C = contract(outer(A, B), 1, 2)\n";
    SCOPED_TRACE(source);

    en::Tensor A(en::Shape{m, k});
    en::Tensor B(en::Shape{k, n});
    for (auto &v : A.data()) v = rng.uniform() * 2.0 - 1.0;
    for (auto &v : B.data()) v = rng.uniform() * 2.0 - 1.0;
    std::map<std::string, en::Tensor> inputs{{"A", A}, {"B", B}};

    auto prog = ef::parse_cfdlang(source);
    ASSERT_TRUE(prog.has_value()) << prog.error().message;
    auto teil = et::lower_cfdlang_to_teil(**prog);
    ASSERT_TRUE(teil.has_value()) << teil.error().message;
    auto teil_out = et::evaluate_teil(**teil, inputs);
    ASSERT_TRUE(teil_out.has_value()) << teil_out.error().message;
    auto loops = et::lower_teil_to_loops(**teil);
    ASSERT_TRUE(loops.has_value()) << loops.error().message;
    auto loops_out = et::evaluate_loops(**loops, inputs);
    ASSERT_TRUE(loops_out.has_value()) << loops_out.error().message;

    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        double want = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk) want += A(i, kk) * B(kk, j);
        EXPECT_NEAR(teil_out->at("C")(i, j), want, 1e-9);
        EXPECT_NEAR(loops_out->at("C")(i, j), want, 1e-9);
      }
  }
}
