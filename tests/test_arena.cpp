// Arena / IR-ownership lifetime tests: bump allocation, destructor records,
// erase -> tombstone semantics, address stability, bulk reset, and clone
// fidelity. These are the invariants the parallel pass manager and the
// rewrite drivers rely on, so they also run under the asan preset
// (-fsanitize=address,undefined) where a stale pointer would abort.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ir/arena.hpp"
#include "ir/builder.hpp"
#include "ir/ir.hpp"
#include "support/alloc_hook.hpp"

namespace ei = everest::ir;

namespace {

struct DtorProbe {
  explicit DtorProbe(std::vector<int> *log, int id) : log(log), id(id) {}
  ~DtorProbe() { log->push_back(id); }
  std::vector<int> *log;
  int id;
};

}  // namespace

// ----------------------------------------------------------------- Arena core

TEST(Arena, AllocationsAreAlignedAndCounted) {
  ei::Arena arena;
  void *a = arena.allocate(3, 1);
  void *b = arena.allocate(8, 8);
  void *c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  auto stats = arena.stats();
  EXPECT_EQ(stats.allocations, 3u);
  EXPECT_GE(stats.bytes_used, 12u);
  EXPECT_GE(stats.bytes_reserved, stats.bytes_used);
}

TEST(Arena, GrowsNewSlabsForOversizeRequests) {
  ei::Arena arena(/*slab_bytes=*/4096);
  // Larger than a whole slab: must land in a dedicated slab, not truncate.
  void *big = arena.allocate(10000, 16);
  ASSERT_NE(big, nullptr);
  auto stats = arena.stats();
  EXPECT_GE(stats.bytes_reserved, 10000u);
  EXPECT_GE(stats.slabs, 1u);
}

TEST(Arena, ResetRunsDestructorsInReverseOrder) {
  std::vector<int> log;
  ei::Arena arena;
  arena.create<DtorProbe>(&log, 1);
  arena.create<DtorProbe>(&log, 2);
  arena.create<DtorProbe>(&log, 3);
  EXPECT_TRUE(log.empty());
  arena.reset();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(arena.stats().resets, 1u);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, DestructorRunsOnArenaDestruction) {
  std::vector<int> log;
  {
    ei::Arena arena;
    arena.create<DtorProbe>(&log, 7);
  }
  EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(Arena, ResetRecyclesMemoryForReuse) {
  ei::Arena arena(/*slab_bytes=*/4096);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) arena.allocate(32, 8);
    arena.reset();
  }
  // After resets the arena holds at most one slab again.
  EXPECT_EQ(arena.stats().slabs, 1u);
  EXPECT_EQ(arena.stats().resets, 3u);
}

TEST(Arena, HighWaterTracksLifetimePeak) {
  ei::Arena arena;
  arena.allocate(1000, 8);
  auto peak = arena.stats();
  EXPECT_GE(peak.high_water, 1000u);
  EXPECT_EQ(peak.high_water, peak.bytes_used);
  arena.reset();
  // bytes_used restarts at zero but the lifetime peak survives: telemetry
  // wants "how big did this module ever get", not "how big is it now".
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  EXPECT_EQ(arena.stats().high_water, peak.high_water);
  arena.allocate(16, 8);
  EXPECT_EQ(arena.stats().high_water, peak.high_water);
}

TEST(Arena, UseNodeAccountingResetsWithArena) {
  ei::Arena arena;
  EXPECT_EQ(arena.stats().use_nodes, 0u);
  arena.note_use_nodes(5);
  arena.note_use_nodes(3);
  EXPECT_EQ(arena.stats().use_nodes, 8u);
  arena.reset();
  EXPECT_EQ(arena.stats().use_nodes, 0u);
}

TEST(Arena, CreateWithTrailingStorageIsUsableAndDestroyed) {
  std::vector<int> log;
  ei::Arena arena;
  auto *probe = arena.create_with_trailing<DtorProbe>(64, &log, 11);
  auto *bytes = reinterpret_cast<unsigned char *>(probe) + sizeof(DtorProbe);
  for (int i = 0; i < 64; ++i) bytes[i] = static_cast<unsigned char>(i);
  for (int i = 0; i < 64; ++i)
    ASSERT_EQ(bytes[i], static_cast<unsigned char>(i));
  arena.reset();
  EXPECT_EQ(log, (std::vector<int>{11}));
}

TEST(Arena, AllocateArrayIsAlignedForElementType) {
  ei::Arena arena;
  arena.allocate(1, 1);  // misalign the bump pointer first
  double *d = arena.allocate_array<double>(7);
  void **p = arena.allocate_array<void *>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(void *), 0u);
  d[6] = 1.5;
  p[2] = d;
  EXPECT_EQ(d[6], 1.5);
  EXPECT_EQ(p[2], d);
}

// ------------------------------------------------------- Op lifetime/tombstones

TEST(ArenaIr, EraseTombstonesWithoutFreeing) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Operation &neg = b.create("arith.negf", {x}, {ei::Type::floating(64)});
  ei::Operation *neg_ptr = &neg;

  module.body().erase(neg_ptr);

  // The op is out of the list but its memory is still readable (tombstone):
  // worklist drivers may hold stale pointers until they observe erased().
  EXPECT_TRUE(neg_ptr->erased());
  EXPECT_EQ(neg_ptr->name(), "arith.negf");
  EXPECT_EQ(neg_ptr->parent_block(), nullptr);
  EXPECT_EQ(module.body().size(), 1u);
  // Use-lists were unhooked, so DCE-style queries see the def as dead.
  EXPECT_TRUE(x->users().empty());
}

TEST(ArenaIr, EraseTombstonesNestedSubtree) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &outer = b.create("scf.execute_region", {}, {}, {}, 1);
  ei::Block &body = outer.region(0).add_block();
  ei::OpBuilder inner(&body);
  ei::Value *c = inner.constant_f64(2.0);
  ei::Operation &use = inner.create("arith.negf", {c}, {ei::Type::floating(64)});
  ei::Operation *use_ptr = &use;
  ei::Operation *def_ptr = c->defining_op();

  module.body().erase(&outer);

  EXPECT_TRUE(outer.erased());
  EXPECT_TRUE(use_ptr->erased());
  EXPECT_TRUE(def_ptr->erased());
  // Nested operand uses were dropped too: no dangling use-list entries.
  EXPECT_TRUE(c->users().empty());
}

TEST(ArenaIr, ErasedAddressesAreNeverReusedBeforeReset) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  std::set<const ei::Operation *> seen;
  for (int i = 0; i < 200; ++i) {
    ei::Value *v = b.constant_f64(static_cast<double>(i));
    const ei::Operation *op = v->defining_op();
    // Bump allocation without reuse: every op gets a fresh address even
    // though earlier ones were erased. This is what lets the worklist
    // driver use raw pointers as identities without an ABA hazard.
    EXPECT_TRUE(seen.insert(op).second);
    module.body().erase(const_cast<ei::Operation *>(op));
  }
  EXPECT_EQ(module.body().size(), 0u);
}

TEST(ArenaIr, DetachReattachMovesWithoutTombstoning) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &a = b.create("test.a", {}, {});
  ei::Operation &c = b.create("test.c", {}, {});
  ei::Operation *mid = ei::Operation::create(module.arena(),
                                             ei::Symbol("test.b"), {}, {});
  module.body().attach_before(mid, &c);
  EXPECT_EQ(module.body().size(), 3u);
  EXPECT_EQ(a.next_in_block(), mid);
  EXPECT_EQ(mid->next_in_block(), &c);

  module.body().detach(mid);
  EXPECT_FALSE(mid->erased());
  EXPECT_EQ(mid->parent_block(), nullptr);
  EXPECT_EQ(module.body().size(), 2u);
  EXPECT_EQ(a.next_in_block(), &c);

  module.body().attach(mid);
  EXPECT_EQ(module.body().size(), 3u);
  EXPECT_EQ(&module.body().back(), mid);
}

TEST(ArenaIr, OperandSlotsAccountedAsUseNodes) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  std::size_t before = module.arena().stats().use_nodes;
  ei::Operation &add = b.create("arith.addf", {x, y}, {ei::Type::floating(64)});
  std::size_t after = module.arena().stats().use_nodes;
  EXPECT_GE(after - before, 2u);
  // Growing past the inline capacity allocates a fresh, larger slot array;
  // the abandoned one stays counted — use_nodes tracks slots allocated, not
  // slots live, matching the arena's never-free model.
  for (int i = 0; i < 6; ++i) add.append_operand(x);
  EXPECT_GT(module.arena().stats().use_nodes, after);
}

TEST(ArenaIr, ModuleStatsReflectArenaOwnership) {
  ei::Module module;
  auto before = module.arena().stats();
  ei::OpBuilder b(&module.body());
  for (int i = 0; i < 50; ++i) b.constant_f64(static_cast<double>(i));
  auto after = module.arena().stats();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GT(after.bytes_used, before.bytes_used);
}

// ------------------------------------------------------------------- Clones

TEST(ArenaIr, CloneModuleIsByteIdenticalAndIndependent) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.5);
  ei::Value *y = b.constant_f64(2.5);
  ei::Value *sum = b.create_value("arith.addf", {x, y}, ei::Type::floating(64));
  ei::Operation &region_op =
      b.create("scf.execute_region", {sum}, {ei::Type::floating(64)}, {}, 1);
  ei::Block &inner = region_op.region(0).add_block();
  inner.add_argument(ei::Type::index());
  ei::OpBuilder ib(&inner);
  ib.create("scf.yield", {sum}, {});

  ei::Module copy = ei::clone_module(module);
  EXPECT_EQ(copy.str(), module.str());

  // Mutating the clone must not bleed into the original (separate arenas).
  copy.find_first("arith.addf")->set_attr("tag", ei::Attribute(true));
  ei::OpBuilder cb(&copy.body());
  cb.constant_f64(9.0);
  EXPECT_NE(copy.str(), module.str());
  EXPECT_EQ(module.find_first("arith.addf")->attr("tag"), nullptr);
}

TEST(ArenaIr, CloneStaysOffTheGlobalHeap) {
  // The alloc_hook TU is linked into this binary, so global operator new is
  // counted while enabled. Under asan/tsan the hook compiles to a stub.
  if (!everest::support::alloc_counter_available())
    GTEST_SKIP() << "alloc counter stubbed out under sanitizers";

  ei::Module module;
  ei::OpBuilder b(&module.body());
  std::vector<ei::Value *> vals;
  vals.push_back(b.constant_f64(1.0));
  vals.push_back(b.constant_f64(2.0));
  const int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    ei::Value *v = b.create_value(
        i % 2 == 0 ? "arith.addf" : "arith.mulf",
        {vals[(i * 7 + 1) % vals.size()], vals[(i * 3 + 2) % vals.size()]},
        ei::Type::floating(64));
    if (i % 3 != 0) vals.push_back(v);
  }

  everest::support::alloc_counter_reset();
  everest::support::alloc_counter_enable(true);
  ei::Module copy = ei::clone_module(module);
  everest::support::alloc_counter_enable(false);
  std::uint64_t news = everest::support::alloc_counter_news();

  EXPECT_EQ(copy.str(), module.str());
  // Per-op data lives in the destination arena: the only global-heap traffic
  // is arena slabs, the value-remap table, and module scaffolding — a small
  // constant plus a sub-linear slab term, nowhere near one new per op.
  EXPECT_LE(news, static_cast<std::uint64_t>(kOps) / 4 + 16);
}

TEST(ArenaIr, CloneOpIntoSplicesSelfContainedFunc) {
  ei::Module src;
  {
    ei::Operation *func = ei::Operation::create(
        src.arena(), ei::Symbol("teil.func"), {}, {},
        {{"sym_name", ei::Attribute(std::string("k"))}}, 1);
    ei::Block &body = func->region(0).add_block();
    ei::OpBuilder b(&body);
    ei::Value *c = b.constant_f64(4.0);
    b.create("teil.output", {c}, {}, {{"name", ei::Attribute(std::string("o"))}});
    src.body().attach(func);
  }

  ei::Module dst;
  const ei::Operation &func = src.body().front();
  ei::Operation *copy = ei::clone_op_into(func, dst.body());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(dst.str(), src.str());
  EXPECT_EQ(&dst.body().front(), copy);
}

TEST(ArenaIr, ModuleMoveTransfersOwnership) {
  ei::Module a;
  ei::OpBuilder b(&a.body());
  b.constant_f64(3.0);
  std::string printed = a.str();

  ei::Module moved = std::move(a);
  EXPECT_EQ(moved.str(), printed);
  ei::Module assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.str(), printed);
}

// ------------------------------------------------------- Region/Block ranges

TEST(ArenaIr, RegionBlocksRangeDoesNotExposeOwnership) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &op = b.create("scf.execute_region", {}, {}, {}, 1);
  op.region(0).add_block();
  op.region(0).add_block();

  std::size_t count = 0;
  for (ei::Block &block : op.region(0).blocks()) {
    (void)block;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(op.region(0).num_blocks(), 2u);
  EXPECT_EQ(&op.region(0).front(), &op.region(0).block(0));
  EXPECT_EQ(&op.region(0).back(), &op.region(0).block(1));

  const ei::Region &cregion = op.region(0);
  count = 0;
  for (const ei::Block &block : cregion.blocks()) {
    (void)block;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}
