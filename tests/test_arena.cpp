// Arena / IR-ownership lifetime tests: bump allocation, destructor records,
// erase -> tombstone semantics, address stability, bulk reset, and clone
// fidelity. These are the invariants the parallel pass manager and the
// rewrite drivers rely on, so they also run under the asan preset
// (-fsanitize=address,undefined) where a stale pointer would abort.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ir/arena.hpp"
#include "ir/builder.hpp"
#include "ir/ir.hpp"

namespace ei = everest::ir;

namespace {

struct DtorProbe {
  explicit DtorProbe(std::vector<int> *log, int id) : log(log), id(id) {}
  ~DtorProbe() { log->push_back(id); }
  std::vector<int> *log;
  int id;
};

}  // namespace

// ----------------------------------------------------------------- Arena core

TEST(Arena, AllocationsAreAlignedAndCounted) {
  ei::Arena arena;
  void *a = arena.allocate(3, 1);
  void *b = arena.allocate(8, 8);
  void *c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  auto stats = arena.stats();
  EXPECT_EQ(stats.allocations, 3u);
  EXPECT_GE(stats.bytes_used, 12u);
  EXPECT_GE(stats.bytes_reserved, stats.bytes_used);
}

TEST(Arena, GrowsNewSlabsForOversizeRequests) {
  ei::Arena arena(/*slab_bytes=*/4096);
  // Larger than a whole slab: must land in a dedicated slab, not truncate.
  void *big = arena.allocate(10000, 16);
  ASSERT_NE(big, nullptr);
  auto stats = arena.stats();
  EXPECT_GE(stats.bytes_reserved, 10000u);
  EXPECT_GE(stats.slabs, 1u);
}

TEST(Arena, ResetRunsDestructorsInReverseOrder) {
  std::vector<int> log;
  ei::Arena arena;
  arena.create<DtorProbe>(&log, 1);
  arena.create<DtorProbe>(&log, 2);
  arena.create<DtorProbe>(&log, 3);
  EXPECT_TRUE(log.empty());
  arena.reset();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(arena.stats().resets, 1u);
  EXPECT_EQ(arena.stats().bytes_used, 0u);
}

TEST(Arena, DestructorRunsOnArenaDestruction) {
  std::vector<int> log;
  {
    ei::Arena arena;
    arena.create<DtorProbe>(&log, 7);
  }
  EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(Arena, ResetRecyclesMemoryForReuse) {
  ei::Arena arena(/*slab_bytes=*/4096);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) arena.allocate(32, 8);
    arena.reset();
  }
  // After resets the arena holds at most one slab again.
  EXPECT_EQ(arena.stats().slabs, 1u);
  EXPECT_EQ(arena.stats().resets, 3u);
}

// ------------------------------------------------------- Op lifetime/tombstones

TEST(ArenaIr, EraseTombstonesWithoutFreeing) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Operation &neg = b.create("arith.negf", {x}, {ei::Type::floating(64)});
  ei::Operation *neg_ptr = &neg;

  module.body().erase(neg_ptr);

  // The op is out of the list but its memory is still readable (tombstone):
  // worklist drivers may hold stale pointers until they observe erased().
  EXPECT_TRUE(neg_ptr->erased());
  EXPECT_EQ(neg_ptr->name(), "arith.negf");
  EXPECT_EQ(neg_ptr->parent_block(), nullptr);
  EXPECT_EQ(module.body().size(), 1u);
  // Use-lists were unhooked, so DCE-style queries see the def as dead.
  EXPECT_TRUE(x->users().empty());
}

TEST(ArenaIr, EraseTombstonesNestedSubtree) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &outer = b.create("scf.execute_region", {}, {}, {}, 1);
  ei::Block &body = outer.region(0).add_block();
  ei::OpBuilder inner(&body);
  ei::Value *c = inner.constant_f64(2.0);
  ei::Operation &use = inner.create("arith.negf", {c}, {ei::Type::floating(64)});
  ei::Operation *use_ptr = &use;
  ei::Operation *def_ptr = c->defining_op();

  module.body().erase(&outer);

  EXPECT_TRUE(outer.erased());
  EXPECT_TRUE(use_ptr->erased());
  EXPECT_TRUE(def_ptr->erased());
  // Nested operand uses were dropped too: no dangling use-list entries.
  EXPECT_TRUE(c->users().empty());
}

TEST(ArenaIr, ErasedAddressesAreNeverReusedBeforeReset) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  std::set<const ei::Operation *> seen;
  for (int i = 0; i < 200; ++i) {
    ei::Value *v = b.constant_f64(static_cast<double>(i));
    const ei::Operation *op = v->defining_op();
    // Bump allocation without reuse: every op gets a fresh address even
    // though earlier ones were erased. This is what lets the worklist
    // driver use raw pointers as identities without an ABA hazard.
    EXPECT_TRUE(seen.insert(op).second);
    module.body().erase(const_cast<ei::Operation *>(op));
  }
  EXPECT_EQ(module.body().size(), 0u);
}

TEST(ArenaIr, DetachReattachMovesWithoutTombstoning) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &a = b.create("test.a", {}, {});
  ei::Operation &c = b.create("test.c", {}, {});
  ei::Operation *mid = ei::Operation::create(module.arena(),
                                             ei::Symbol("test.b"), {}, {});
  module.body().attach_before(mid, &c);
  EXPECT_EQ(module.body().size(), 3u);
  EXPECT_EQ(a.next_in_block(), mid);
  EXPECT_EQ(mid->next_in_block(), &c);

  module.body().detach(mid);
  EXPECT_FALSE(mid->erased());
  EXPECT_EQ(mid->parent_block(), nullptr);
  EXPECT_EQ(module.body().size(), 2u);
  EXPECT_EQ(a.next_in_block(), &c);

  module.body().attach(mid);
  EXPECT_EQ(module.body().size(), 3u);
  EXPECT_EQ(&module.body().back(), mid);
}

TEST(ArenaIr, ModuleStatsReflectArenaOwnership) {
  ei::Module module;
  auto before = module.arena().stats();
  ei::OpBuilder b(&module.body());
  for (int i = 0; i < 50; ++i) b.constant_f64(static_cast<double>(i));
  auto after = module.arena().stats();
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GT(after.bytes_used, before.bytes_used);
}

// ------------------------------------------------------------------- Clones

TEST(ArenaIr, CloneModuleIsByteIdenticalAndIndependent) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.5);
  ei::Value *y = b.constant_f64(2.5);
  ei::Value *sum = b.create_value("arith.addf", {x, y}, ei::Type::floating(64));
  ei::Operation &region_op =
      b.create("scf.execute_region", {sum}, {ei::Type::floating(64)}, {}, 1);
  ei::Block &inner = region_op.region(0).add_block();
  inner.add_argument(ei::Type::index());
  ei::OpBuilder ib(&inner);
  ib.create("scf.yield", {sum}, {});

  ei::Module copy = ei::clone_module(module);
  EXPECT_EQ(copy.str(), module.str());

  // Mutating the clone must not bleed into the original (separate arenas).
  copy.find_first("arith.addf")->set_attr("tag", ei::Attribute(true));
  ei::OpBuilder cb(&copy.body());
  cb.constant_f64(9.0);
  EXPECT_NE(copy.str(), module.str());
  EXPECT_EQ(module.find_first("arith.addf")->attr("tag"), nullptr);
}

TEST(ArenaIr, CloneOpIntoSplicesSelfContainedFunc) {
  ei::Module src;
  {
    ei::Operation *func = ei::Operation::create(
        src.arena(), ei::Symbol("teil.func"), {}, {},
        {{"sym_name", ei::Attribute(std::string("k"))}}, 1);
    ei::Block &body = func->region(0).add_block();
    ei::OpBuilder b(&body);
    ei::Value *c = b.constant_f64(4.0);
    b.create("teil.output", {c}, {}, {{"name", ei::Attribute(std::string("o"))}});
    src.body().attach(func);
  }

  ei::Module dst;
  const ei::Operation &func = src.body().front();
  ei::Operation *copy = ei::clone_op_into(func, dst.body());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(dst.str(), src.str());
  EXPECT_EQ(&dst.body().front(), copy);
}

TEST(ArenaIr, ModuleMoveTransfersOwnership) {
  ei::Module a;
  ei::OpBuilder b(&a.body());
  b.constant_f64(3.0);
  std::string printed = a.str();

  ei::Module moved = std::move(a);
  EXPECT_EQ(moved.str(), printed);
  ei::Module assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.str(), printed);
}

// ------------------------------------------------------- Region/Block ranges

TEST(ArenaIr, RegionBlocksRangeDoesNotExposeOwnership) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &op = b.create("scf.execute_region", {}, {}, {}, 1);
  op.region(0).add_block();
  op.region(0).add_block();

  std::size_t count = 0;
  for (ei::Block &block : op.region(0).blocks()) {
    (void)block;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(op.region(0).num_blocks(), 2u);
  EXPECT_EQ(&op.region(0).front(), &op.region(0).block(0));
  EXPECT_EQ(&op.region(0).back(), &op.region(0).block(1));

  const ei::Region &cregion = op.region(0);
  count = 0;
  for (const ei::Block &block : cregion.blocks()) {
    (void)block;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}
