// Tests for canonicalization (constant folding, CSE, broadcast folding) and
// the loop-level interpreter, including the full three-level equivalence
// chain: EKL eval == TeIL eval == loop eval on the Fig. 3 kernel.

#include <gtest/gtest.h>

#include "dialects/registry.hpp"
#include "frontend/ekl_parser.hpp"
#include "ir/builder.hpp"
#include "support/stats.hpp"
#include "support/rng.hpp"
#include "transforms/canonicalize.hpp"
#include "transforms/ekl_eval.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "transforms/loop_eval.hpp"
#include "transforms/teil_eval.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"

namespace ei = everest::ir;
namespace et = everest::transforms;
namespace en = everest::numerics;
namespace rr = everest::usecases::rrtmg;

class CanonicalizeTest : public ::testing::Test {
protected:
  void SetUp() override { everest::dialects::register_everest_dialects(ctx_); }
  ei::Context ctx_;
};

// ---------------------------------------------------------- constant folding

TEST_F(CanonicalizeTest, FoldsConstantExpressions) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *two = b.constant_f64(2.0);
  ei::Value *three = b.constant_f64(3.0);
  ei::Value *sum = b.create_value("arith.addf", {two, three},
                                  ei::Type::floating(64));
  ei::Value *neg = b.create_value("arith.negf", {sum}, ei::Type::floating(64));
  // Keep the result alive through a non-foldable op.
  ei::Operation &keep = b.create("teil.output", {neg}, {},
                                 {{"name", ei::Attribute("out")}});
  (void)keep;

  auto stats = et::canonicalize(module);
  EXPECT_GE(stats.folded_constants, 2u);
  EXPECT_TRUE(ctx_.verify(module).is_ok());
  // The surviving producer is a single constant -5.
  auto *output = module.find_first("teil.output");
  ASSERT_NE(output, nullptr);
  auto *def = output->operand(0)->defining_op();
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name(), "arith.constant");
  EXPECT_DOUBLE_EQ(def->attr_double("value"), -5.0);
}

TEST_F(CanonicalizeTest, AlgebraicIdentities) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.create_value("teil.input", {}, ei::Type::floating(64),
                                {{"name", ei::Attribute("x")}});
  ei::Value *one = b.constant_f64(1.0);
  ei::Value *zero = b.constant_f64(0.0);
  ei::Value *m = b.create_value("arith.mulf", {x, one}, ei::Type::floating(64));
  ei::Value *a = b.create_value("arith.addf", {m, zero}, ei::Type::floating(64));
  b.create("teil.output", {a}, {}, {{"name", ei::Attribute("y")}});

  et::canonicalize(module);
  auto *output = module.find_first("teil.output");
  // x*1 + 0 collapses to x itself.
  EXPECT_EQ(output->operand(0), x);
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

TEST_F(CanonicalizeTest, SelectWithConstantCondition) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *cond = b.constant_f64(1.0);
  ei::Value *t = b.create_value("teil.input", {}, ei::Type::floating(64),
                                {{"name", ei::Attribute("t")}});
  ei::Value *e = b.create_value("teil.input", {}, ei::Type::floating(64),
                                {{"name", ei::Attribute("e")}});
  ei::Value *sel =
      b.create_value("arith.select", {cond, t, e}, ei::Type::floating(64));
  b.create("teil.output", {sel}, {}, {{"name", ei::Attribute("y")}});
  et::canonicalize(module);
  EXPECT_EQ(module.find_first("teil.output")->operand(0), t);
}

// --------------------------------------------------------------------- CSE

TEST_F(CanonicalizeTest, CseDeduplicatesPureOps) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.create_value("teil.input", {}, ei::Type::floating(64),
                                {{"name", ei::Attribute("x")}});
  ei::Value *a = b.create_value("arith.mulf", {x, x}, ei::Type::floating(64));
  ei::Value *b2 = b.create_value("arith.mulf", {x, x}, ei::Type::floating(64));
  ei::Value *sum = b.create_value("arith.addf", {a, b2}, ei::Type::floating(64));
  b.create("teil.output", {sum}, {}, {{"name", ei::Attribute("y")}});

  std::size_t replaced = et::common_subexpression_elimination(module);
  EXPECT_EQ(replaced, 1u);
  auto *add = module.find_first("arith.addf");
  EXPECT_EQ(add->operand(0), add->operand(1));
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

TEST_F(CanonicalizeTest, CseRespectsAttributes) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *c1 = b.constant_f64(1.0);
  ei::Value *c2 = b.constant_f64(2.0);  // different attr: must survive
  ei::Value *sum = b.create_value("arith.addf", {c1, c2},
                                  ei::Type::floating(64));
  b.create("teil.output", {sum}, {}, {{"name", ei::Attribute("y")}});
  std::size_t replaced = et::common_subexpression_elimination(module);
  EXPECT_EQ(replaced, 0u);
}

// ------------------------------------------------------- broadcast folding

TEST_F(CanonicalizeTest, FoldsBroadcastChains) {
  auto m = everest::frontend::parse_ekl(R"(
kernel k
index i, j, g
input a[i]
r = sum(j) a[i] + 0 * a[i]
output r
)");
  // Simpler deterministic construction: broadcast-of-broadcast by hand.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  auto t1 = ei::Type::tensor({4}, ei::Type::floating(64));
  auto t2 = ei::Type::tensor({4, 5}, ei::Type::floating(64));
  auto t3 = ei::Type::tensor({4, 5, 6}, ei::Type::floating(64));
  ei::Value *x = b.create_value("teil.input", {}, t1,
                                {{"name", ei::Attribute("x")}});
  ei::Value *b1 = b.create_value("teil.broadcast", {x}, t2,
                                 {{"map", ei::Attribute::int_array({0, -1})}});
  ei::Value *b2 = b.create_value(
      "teil.broadcast", {b1}, t3,
      {{"map", ei::Attribute::int_array({0, 1, -1})}});
  b.create("teil.output", {b2}, {}, {{"name", ei::Attribute("y")}});

  std::size_t folded = et::fold_broadcast_chains(module);
  EXPECT_EQ(folded, 1u);
  auto *outer = module.find_first("teil.output")->operand(0)->defining_op();
  EXPECT_EQ(outer->operand(0), x);  // now reads the source directly
  EXPECT_EQ(outer->attr("map")->as_int_vector(),
            (std::vector<std::int64_t>{0, -1, -1}));
  et::eliminate_dead_code(module);
  EXPECT_TRUE(ctx_.verify(module).is_ok());
  (void)m;
}

// ----------------------------------------------- semantics preserved on RRTMG

TEST_F(CanonicalizeTest, RrtmgUnchangedByCanonicalization) {
  rr::Config cfg;
  cfg.ncells = 8;
  cfg.nbnd = 2;
  cfg.ng = 4;
  rr::Data data = rr::make_data(cfg);
  auto m = everest::frontend::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());

  auto before = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(before.has_value());
  std::size_t ops_before = (*teil)->op_count();

  auto stats = et::canonicalize(**teil);
  EXPECT_GT(stats.cse_replaced + stats.dce_removed + stats.broadcasts_folded,
            0u);
  EXPECT_LT((*teil)->op_count(), ops_before);
  ASSERT_TRUE(ctx_.verify(**teil).is_ok()) << ctx_.verify(**teil).message();

  auto after = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(everest::support::max_abs_diff(before->at("tau").data(),
                                           after->at("tau").data()),
            1e-15);
}

// ------------------------------------------------------- loop interpreter

TEST_F(CanonicalizeTest, LoopEvalMatchesTeilOnDot) {
  auto m = everest::frontend::parse_ekl(R"(
kernel dot
index i
input a[i]
input b[i]
d = sum(i) a[i] * b[i]
output d
)");
  ASSERT_TRUE(m.has_value());
  et::EklBindings bind;
  everest::support::Pcg32 rng(3);
  en::Tensor a(en::Shape{32}), b2(en::Shape{32});
  for (auto &v : a.data()) v = rng.normal();
  for (auto &v : b2.data()) v = rng.normal();
  bind.inputs.emplace("a", a);
  bind.inputs.emplace("b", b2);

  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  auto loops = et::lower_teil_to_loops(**teil);
  ASSERT_TRUE(loops.has_value());

  auto teil_out = et::evaluate_teil(**teil, bind.inputs);
  auto loop_out = et::evaluate_loops(**loops, bind.inputs);
  ASSERT_TRUE(teil_out.has_value());
  ASSERT_TRUE(loop_out.has_value()) << loop_out.error().message;
  EXPECT_NEAR(teil_out->at("d").flat(0), loop_out->at("d").flat(0), 1e-12);
}

// The full chain on Fig. 3: EKL == TeIL == loop IR, across seeds.
class ThreeLevelEquivalence : public CanonicalizeTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(ThreeLevelEquivalence, Fig3AllLevelsAgree) {
  rr::Config cfg;
  cfg.ncells = 6;
  cfg.nbnd = 2;
  cfg.ng = 3;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  rr::Data data = rr::make_data(cfg);
  auto m = everest::frontend::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);

  auto ekl_out = et::evaluate_ekl(**m, bind);
  ASSERT_TRUE(ekl_out.has_value());

  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());
  et::canonicalize(**teil);
  auto loops = et::lower_teil_to_loops(**teil);
  ASSERT_TRUE(loops.has_value());

  auto loop_out = et::evaluate_loops(**loops, bind.inputs);
  ASSERT_TRUE(loop_out.has_value()) << loop_out.error().message;
  EXPECT_LT(everest::support::max_abs_diff(ekl_out->at("tau").data(),
                                           loop_out->at("tau").data()),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeLevelEquivalence,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST_F(CanonicalizeTest, LoopEvalValidation) {
  ei::Module empty;
  EXPECT_FALSE(et::evaluate_loops(empty, {}).has_value());
}

// Regression: CSE once merged teil.iota ops of different extents (same
// signature, different result types), silently corrupting gather indices at
// configurations where several distinct index extents appear (ncells=16,
// ng=4 exposed it). The signature now includes the result type.
TEST_F(CanonicalizeTest, CseKeepsDifferentlyTypedOpsApart) {
  rr::Config cfg;
  cfg.ncells = 16;
  cfg.ng = 4;
  rr::Data data = rr::make_data(cfg);
  auto m = everest::frontend::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto bind = rr::bindings(data);
  auto teil = et::lower_ekl_to_teil(**m, bind);
  ASSERT_TRUE(teil.has_value());

  et::common_subexpression_elimination(**teil);
  et::eliminate_dead_code(**teil);
  ASSERT_TRUE(ctx_.verify(**teil).is_ok());

  auto out = et::evaluate_teil(**teil, bind.inputs);
  ASSERT_TRUE(out.has_value());
  auto ref = rr::reference_tau(data);
  EXPECT_LT(everest::support::max_abs_diff(out->at("tau").data(), ref.data()),
            1e-12);

  // Direct unit check: two iotas of different extents must not merge.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *i4 = b.create_value("teil.iota", {},
                                 ei::Type::tensor({4}, ei::Type::floating(64)));
  ei::Value *i9 = b.create_value("teil.iota", {},
                                 ei::Type::tensor({9}, ei::Type::floating(64)));
  b.create("teil.stack", {i4, i4}, {ei::Type::tensor({4, 2}, ei::Type::floating(64))});
  b.create("teil.stack", {i9, i9}, {ei::Type::tensor({9, 2}, ei::Type::floating(64))});
  EXPECT_EQ(et::common_subexpression_elimination(module), 0u);
}
