// HPCC-FPGA RandomAccess coordination program (ConDRust subset): the
// update stream folds into the table state one (index, value) record at a
// time — an ordered, stateful fold, exactly the shape a batching serving
// layer must not fuse across requests.
fn randomaccess(updates: Stream<Update>) -> Stream<Table> {
    let table = fold apply_update(updates);
    return table;
}
