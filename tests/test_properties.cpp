// Property-style test suites (parameterized gtest) over the SDK's core
// invariants: bit-true number-format round trips, IR print/parse fixpoints,
// HLS monotonicity in its options, memory-model conservation laws, and
// noise-robustness curves of the map matcher.

#include <gtest/gtest.h>

#include <cmath>

#include "dialects/registry.hpp"
#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "numerics/formats.hpp"
#include "platform/memory.hpp"
#include "runtime/resource_manager.hpp"
#include "support/rng.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/traffic.hpp"

namespace en = everest::numerics;
namespace ei = everest::ir;
namespace ep = everest::platform;
namespace eh = everest::hls;

// ------------------------------------------------- number format involutions

TEST(FormatProperties, Posit8AllCodesRoundTrip) {
  // decode is exact, so encode(decode(c)) must reproduce every code:
  // the codec is an involution over the full 8-bit space.
  en::PositFormat p8(8, 0);
  for (std::uint64_t code = 0; code < 256; ++code) {
    double v = p8.decode(code);
    EXPECT_EQ(p8.encode(v), code) << "code " << code << " value " << v;
  }
}

TEST(FormatProperties, Posit16SampledCodesRoundTrip) {
  en::PositFormat p16(16, 1);
  for (std::uint64_t code = 0; code < (1u << 16); code += 37) {
    double v = p16.decode(code);
    EXPECT_EQ(p16.encode(v), code) << "code " << code;
  }
}

TEST(FormatProperties, FixedCodesRoundTrip) {
  en::FixedPointFormat q12(12, 5);
  for (std::int64_t code = -(1 << 11); code < (1 << 11); code += 7) {
    EXPECT_EQ(q12.encode(q12.decode(code)), code);
  }
}

class QuantizeIdempotent
    : public ::testing::TestWithParam<const char *> {};

TEST_P(QuantizeIdempotent, QuantizeTwiceEqualsOnce) {
  // quantize must be a projection: q(q(x)) == q(x) on random inputs.
  std::unique_ptr<en::NumberFormat> fmt;
  std::string spec = GetParam();
  if (spec == "fixed") fmt = std::make_unique<en::FixedPointFormat>(16, 8);
  else if (spec == "minifloat") fmt = std::make_unique<en::MiniFloatFormat>(5, 10);
  else fmt = std::make_unique<en::PositFormat>(16, 1);

  everest::support::Pcg32 rng(11);
  for (int i = 0; i < 2000; ++i) {
    double x = rng.normal(0.0, std::pow(10.0, rng.uniform(-3.0, 3.0)));
    double once = fmt->quantize(x);
    double twice = fmt->quantize(once);
    EXPECT_EQ(once, twice) << spec << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantizeIdempotent,
                         ::testing::Values("fixed", "minifloat", "posit"));

// -------------------------------------------------- IR print/parse fixpoint

namespace {

/// Builds a randomized (but verifiable) module from a safe op grammar.
std::shared_ptr<ei::Module> random_module(std::uint64_t seed) {
  everest::support::Pcg32 rng(seed);
  auto module = std::make_shared<ei::Module>();
  ei::OpBuilder b(&module->body());
  std::vector<ei::Value *> pool;
  pool.push_back(b.constant_f64(rng.normal()));
  for (int i = 0; i < 20; ++i) {
    switch (rng.bounded(4)) {
      case 0:
        pool.push_back(b.constant_f64(rng.normal()));
        break;
      case 1: {
        ei::Value *x = pool[rng.bounded(static_cast<std::uint32_t>(pool.size()))];
        ei::Value *y = pool[rng.bounded(static_cast<std::uint32_t>(pool.size()))];
        const char *ops[] = {"arith.addf", "arith.mulf", "arith.subf"};
        pool.push_back(
            b.create_value(ops[rng.bounded(3)], {x, y}, ei::Type::floating(64)));
        break;
      }
      case 2: {
        ei::Value *x = pool[rng.bounded(static_cast<std::uint32_t>(pool.size()))];
        pool.push_back(b.create_value("arith.negf", {x}, ei::Type::floating(64),
                                      {{"note", ei::Attribute("n\"est\ned")}}));
        break;
      }
      default: {
        // Region op with block args and a nested body.
        ei::Value *x = pool[rng.bounded(static_cast<std::uint32_t>(pool.size()))];
        ei::Operation &region_op = b.create(
            "scf.execute_region", {x}, {ei::Type::floating(64)},
            {{"tags", ei::Attribute::int_array({1, 2, 3})}}, 1);
        ei::Block &body = region_op.region(0).add_block();
        body.add_argument(ei::Type::index());
        ei::OpBuilder inner(&body);
        ei::Value *c = inner.constant_f64(rng.normal());
        inner.create("scf.yield", {c}, {});
        pool.push_back(region_op.result(0));
        break;
      }
    }
  }
  return module;
}

}  // namespace

class PrintParseFixpoint : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseFixpoint, RandomModules) {
  ei::Context ctx;
  everest::dialects::register_everest_dialects(ctx);
  auto module = random_module(static_cast<std::uint64_t>(GetParam()));
  ASSERT_TRUE(ctx.verify(*module).is_ok());
  std::string once = module->str();
  auto reparsed = ei::parse_module(once);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  EXPECT_EQ((*reparsed)->str(), once);
  EXPECT_TRUE(ctx.verify(**reparsed).is_ok());
  EXPECT_EQ((*reparsed)->op_count(), module->op_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrintParseFixpoint,
                         ::testing::Range(1, 13));

// --------------------------------------------------------- HLS monotonicity

namespace {

std::shared_ptr<ei::Module> saxpy_loops(std::int64_t n) {
  auto m = everest::frontend::parse_ekl(R"(
kernel sx
index i
input x[i]
input y[i]
r = x[i] * 3 + y[i]
output r
)").value();
  everest::transforms::EklBindings bind;
  bind.inputs.emplace("x", en::Tensor({n}));
  bind.inputs.emplace("y", en::Tensor({n}));
  auto teil = everest::transforms::lower_ekl_to_teil(*m, bind).value();
  return everest::transforms::lower_teil_to_loops(*teil).value();
}

}  // namespace

class HlsWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(HlsWidthSweep, AreaAndLatencyMonotoneInWidth) {
  auto loops = saxpy_loops(4096);
  eh::HlsOptions narrow;
  narrow.datapath_bits = GetParam();
  eh::HlsOptions wider;
  wider.datapath_bits = GetParam() * 2;
  auto a = eh::schedule_kernel(*loops, narrow).value();
  auto b = eh::schedule_kernel(*loops, wider).value();
  EXPECT_LE(a.area.luts, b.area.luts);
  EXPECT_LE(a.area.dsps, b.area.dsps);
  EXPECT_LE(a.total_cycles, b.total_cycles);
}

INSTANTIATE_TEST_SUITE_P(Widths, HlsWidthSweep, ::testing::Values(8, 16, 32));

TEST(HlsProperties, MorePortsNeverSlower) {
  auto loops = saxpy_loops(4096);
  eh::HlsOptions one_port;
  one_port.mem_read_ports = 1;
  eh::HlsOptions two_ports;
  two_ports.mem_read_ports = 2;
  auto a = eh::schedule_kernel(*loops, one_port).value();
  auto b = eh::schedule_kernel(*loops, two_ports).value();
  EXPECT_GE(a.total_cycles, b.total_cycles);
}

TEST(HlsProperties, DataflowNeverSlowerThanSequential) {
  for (std::int64_t n : {256, 1024, 8192}) {
    auto loops = saxpy_loops(n);
    auto report = eh::schedule_kernel(*loops).value();
    EXPECT_LE(report.dataflow_cycles, report.total_cycles) << n;
  }
}

// --------------------------------------------------- memory model invariants

class ContentionStreams : public ::testing::TestWithParam<int> {};

TEST_P(ContentionStreams, ConservationAndBounds) {
  auto mem = ep::alveo_u55c().memory;
  int streams = GetParam();
  std::vector<ep::MemoryStream> all;
  std::int64_t total_bytes = 0;
  everest::support::Pcg32 rng(static_cast<std::uint64_t>(streams));
  for (int s = 0; s < streams; ++s) {
    ep::MemoryStream st;
    st.bytes = 1'000'000 * (1 + static_cast<std::int64_t>(rng.bounded(64)));
    st.channels = {static_cast<int>(rng.bounded(32))};
    total_bytes += st.bytes;
    all.push_back(std::move(st));
  }
  double t = ep::contention_time_seconds(all, mem);
  // Lower bound: the aggregate cannot beat the full-device bandwidth.
  double device_bw = mem.hbm_gbps_per_channel * mem.hbm_channels * 1e9;
  EXPECT_GE(t, static_cast<double>(total_bytes) / device_bw - 1e-9);
  // Upper bound: no stream can be slower than having its channel alone
  // shared by all streams simultaneously.
  double worst = 0.0;
  for (const auto &st : all) {
    worst = std::max(worst, static_cast<double>(st.bytes) * streams /
                                (mem.hbm_gbps_per_channel * 1e9));
  }
  EXPECT_LE(t, worst + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, ContentionStreams,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

TEST(MemoryProperties, DisjointStreamsRunInParallel) {
  auto mem = ep::alveo_u55c().memory;
  std::vector<ep::MemoryStream> streams;
  for (int s = 0; s < 8; ++s) {
    ep::MemoryStream st;
    st.bytes = 100'000'000;
    st.channels = {s};
    streams.push_back(st);
  }
  double together = ep::contention_time_seconds(streams, mem);
  double alone = ep::contention_time_seconds({streams[0]}, mem);
  EXPECT_NEAR(together, alone, alone * 0.01);
}

// -------------------------------------------------- map matching vs noise

class MatcherNoise : public ::testing::TestWithParam<double> {};

TEST_P(MatcherNoise, AccuracyDegradesGracefully) {
  namespace tr = everest::usecases::traffic;
  auto net = tr::make_grid_network(8, 1.0, 5);
  double noise = GetParam();
  double acc = 0.0;
  const int runs = 4;
  for (int seed = 0; seed < runs; ++seed) {
    auto trace = tr::make_trace(net, 60, noise,
                                100 + static_cast<std::uint64_t>(seed));
    auto matched = tr::map_match(net, trace.points);
    ASSERT_TRUE(matched.has_value());
    acc += tr::matching_accuracy(*matched, trace.true_segments);
  }
  acc /= runs;
  // Low noise must stay accurate; even heavy noise must beat the ~1/40
  // random-segment floor by a wide margin.
  if (noise <= 0.05) {
    EXPECT_GT(acc, 0.8);
  }
  EXPECT_GT(acc, 0.3);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, MatcherNoise,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2));

// --------------------------------------------- resource-manager schedules

// Any random DAG on any random cluster must yield a well-formed schedule:
// every interval has finish > start >= 0, per-node concurrent core usage
// never exceeds NodeSpec::cores, the FPGA on a node runs at most one task
// at a time, and FPGA-only tasks (cpu_ms < 0) always land on FPGA nodes
// with used_fpga set. Half the seeds also inject a node fault, so the
// rescheduling paths obey the same invariants.
TEST(SchedulerProperties, RandomDagsYieldWellFormedBoundedSchedules) {
  namespace er = everest::runtime;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    everest::support::Pcg32 rng(1000 + seed);
    er::ClusterSpec cluster;
    std::size_t node_count = 2 + rng() % 3;
    for (std::size_t n = 0; n < node_count; ++n) {
      er::NodeSpec node;
      node.name = "node" + std::to_string(n);
      node.cores = 2 + static_cast<int>(rng() % 7);
      node.has_fpga = n == 0 || rng() % 2 == 0;  // >= 1 FPGA node
      node.speed = 0.5 + 1.5 * rng.uniform();
      cluster.nodes.push_back(node);
    }
    er::ResourceManager manager(cluster);
    std::vector<er::TaskSpec> specs;
    std::size_t task_count = 5 + rng() % 16;
    for (std::size_t i = 0; i < task_count; ++i) {
      er::TaskSpec t;
      t.name = "t" + std::to_string(i);
      for (std::size_t j = 0; j < i; ++j) {
        if (rng.uniform() < 0.25) t.deps.push_back(static_cast<er::TaskId>(j));
      }
      double kind = rng.uniform();
      if (kind < 0.25) {
        t.cpu_ms = -1.0;  // FPGA-only variant
        t.fpga_ms = 1.0 + 10.0 * rng.uniform();
      } else {
        t.cpu_ms = 1.0 + 10.0 * rng.uniform();
        t.fpga_ms = rng.uniform() < 0.5 ? 1.0 + 10.0 * rng.uniform() : -1.0;
        if (t.fpga_ms >= 0.0 && rng.uniform() < 0.15) t.needs_fpga = true;
      }
      t.cores = 1 + static_cast<int>(rng() % 2);
      t.output_bytes = static_cast<std::int64_t>(rng() % 10'000);
      ASSERT_TRUE(manager.submit(t).has_value()) << t.name;
      specs.push_back(t);
    }
    if (seed % 2 == 1) {
      er::FaultSpec fault;
      fault.node = cluster.nodes[rng() % node_count].name;
      fault.at_ms = 1.0 + 30.0 * rng.uniform();
      fault.kind = rng() % 2 == 0 ? er::FaultKind::Crash : er::FaultKind::Drain;
      manager.inject_failure(fault);
    }

    for (auto policy : {er::SchedulerOptions::Policy::Heft,
                        er::SchedulerOptions::Policy::Fifo}) {
      er::SchedulerOptions options;
      options.policy = policy;
      options.transfer_aware = seed % 2 == 0;
      auto report = manager.run(options);
      if (!report) {
        // A fault may legitimately make an FPGA-only task unplaceable
        // (e.g. the sole FPGA node crashes); anything else is a bug.
        EXPECT_EQ(report.error().code_enum(),
                  everest::support::ErrorCode::ResourceExhausted)
            << "seed " << seed << ": " << report.error().message;
        continue;
      }
      ASSERT_EQ(report->tasks.size(), task_count) << "seed " << seed;
      for (const auto &[id, outcome] : report->tasks) {
        const auto &spec = specs[static_cast<std::size_t>(id)];
        EXPECT_GE(outcome.start_ms, 0.0) << spec.name << " seed " << seed;
        EXPECT_GT(outcome.finish_ms, outcome.start_ms)
            << spec.name << " seed " << seed;
        if (spec.cpu_ms < 0.0) {
          EXPECT_TRUE(outcome.used_fpga)
              << "FPGA-only task " << spec.name << " seed " << seed;
        }
      }
      for (const auto &[node_name, intervals] : report->node_timeline) {
        int node_cores = 0;
        bool node_has_fpga = false;
        for (const auto &node : cluster.nodes) {
          if (node.name == node_name) {
            node_cores = node.cores;
            node_has_fpga = node.has_fpga;
          }
        }
        ASSERT_GT(node_cores, 0) << "unknown node " << node_name;
        for (const auto &probe : intervals) {
          // Concurrent core demand at each interval start (half-open
          // intervals: a task ending exactly then does not overlap).
          int usage = 0;
          int fpga_users = 0;
          for (const auto &other : intervals) {
            if (other.start_ms <= probe.start_ms &&
                probe.start_ms < other.end_ms) {
              usage += specs[static_cast<std::size_t>(other.task)].cores;
              if (other.used_fpga) ++fpga_users;
            }
          }
          EXPECT_LE(usage, node_cores)
              << node_name << " over-subscribed at " << probe.start_ms
              << " ms, seed " << seed;
          EXPECT_LE(fpga_users, 1)
              << node_name << " FPGA double-booked at " << probe.start_ms
              << " ms, seed " << seed;
          if (probe.used_fpga) {
            EXPECT_TRUE(node_has_fpga)
                << node_name << " has no FPGA, seed " << seed;
          }
        }
      }
    }
  }
}
