// Tests for DOSA: DNN layer analysis and distributed partitioning onto
// network-attached cloudFPGA nodes (paper §V-C, refs [18][19]).

#include <gtest/gtest.h>

#include "olympus/dosa.hpp"
#include "usecases/speednet.hpp"

namespace dosa = everest::olympus::dosa;
namespace sn = everest::usecases::speednet;

namespace {

std::vector<dosa::LayerCost> speednet_layers() {
  auto model = sn::load_model(42);
  EXPECT_TRUE(model.has_value());
  auto layers = dosa::analyze_model(*model);
  EXPECT_TRUE(layers.has_value());
  return *layers;
}

}  // namespace

TEST(Dosa, AnalyzesEveryLayer) {
  auto layers = speednet_layers();
  ASSERT_EQ(layers.size(), 8u);  // conv,relu,pool,conv,relu,pool,flatten,gemm
  // Convolutions dominate the MAC count.
  EXPECT_GT(layers[0].macs, layers[1].macs);
  // conv1: 8 out-ch * 96 * 3 in-ch * k5.
  EXPECT_DOUBLE_EQ(layers[0].macs, 8.0 * 96 * 3 * 5);
  // gemm: 4 x 192.
  EXPECT_DOUBLE_EQ(layers.back().macs, 4.0 * 192);
  // Weights counted on the layers that own them.
  EXPECT_GT(layers[0].weight_bytes, 0);
  EXPECT_EQ(layers[1].weight_bytes, 0);  // relu has none
  for (const auto &l : layers) EXPECT_GT(l.activation_bytes, 0);
}

TEST(Dosa, AnalyzeRejectsUnknownOps) {
  auto bad = everest::frontend::import_onnx_json(R"({
    "inputs": [{"name": "x", "shape": [4]}],
    "nodes": [{"op": "Softmax", "inputs": ["x"], "output": "y"}],
    "outputs": ["y"]
  })");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(dosa::analyze_model(*bad).has_value());
}

TEST(Dosa, SingleNodePlanMatchesSum) {
  auto layers = speednet_layers();
  auto plan = dosa::partition(layers, 1);
  ASSERT_TRUE(plan.has_value()) << plan.error().message;
  EXPECT_EQ(plan->stages.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->network_us_per_inference, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i)
    total += plan->stages[0].compute_us;
  EXPECT_NEAR(plan->pipeline_latency_us, plan->stages[0].compute_us, 1e-9);
}

namespace {

/// A compute-heavy CNN where per-stage work dwarfs a ZRLMPI hop: eight
/// 64-channel convolutions over length-256 sequences.
std::vector<dosa::LayerCost> deep_model_layers() {
  everest::frontend::OnnxModel model;
  model.name = "deepnet";
  model.inputs.push_back({"x", {64, 256}});
  std::string prev = "x";
  for (int i = 0; i < 8; ++i) {
    std::string w = "w" + std::to_string(i);
    model.initializers.emplace(
        w, everest::numerics::Tensor({64, 64, 9}, 0.01));
    everest::frontend::OnnxNode node;
    node.op = "Conv1D";
    node.name = "conv" + std::to_string(i);
    node.inputs = {prev, w};
    node.output = "a" + std::to_string(i);
    model.nodes.push_back(node);
    prev = node.output;
  }
  model.outputs.push_back(prev);
  auto layers = dosa::analyze_model(model);
  EXPECT_TRUE(layers.has_value());
  return *layers;
}

}  // namespace

TEST(Dosa, MoreNodesRaiseThroughputOnHeavyModels) {
  auto layers = deep_model_layers();
  auto p1 = dosa::partition(layers, 1);
  auto p2 = dosa::partition(layers, 2);
  auto p4 = dosa::partition(layers, 4);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  ASSERT_TRUE(p4.has_value());
  // Per-stage compute (~hundreds of us) dwarfs a hop, so splitting wins.
  EXPECT_GT(p2->throughput_inf_per_s, p1->throughput_inf_per_s * 1.5);
  EXPECT_GT(p4->throughput_inf_per_s, p2->throughput_inf_per_s * 1.3);
  // Pipeline latency grows with hops (ZRLMPI messages added).
  EXPECT_GE(p4->network_us_per_inference, p2->network_us_per_inference);
  EXPECT_GE(p4->pipeline_latency_us, p1->pipeline_latency_us);
}

TEST(Dosa, TinyModelPrefersSingleNode) {
  // For speednet (29 us total compute) a 30+ us hop can never pay off.
  auto layers = speednet_layers();
  auto best = dosa::best_plan(layers, 6);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->nodes, 1);
}

TEST(Dosa, StageCountNeverExceedsLayersOrNodes) {
  auto layers = speednet_layers();
  auto plan = dosa::partition(layers, 64);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->stages.size(), layers.size());
  std::size_t covered = 0;
  for (const auto &s : plan->stages) covered += s.layers.size();
  EXPECT_EQ(covered, layers.size());
}

TEST(Dosa, BestPlanIsFeasibleAndOptimal) {
  auto layers = speednet_layers();
  auto best = dosa::best_plan(layers, 6);
  ASSERT_TRUE(best.has_value()) << best.error().message;
  EXPECT_TRUE(best->feasible);
  for (int n = 1; n <= 6; ++n) {
    auto plan = dosa::partition(layers, n);
    ASSERT_TRUE(plan.has_value());
    if (plan->feasible) {
      EXPECT_GE(best->throughput_inf_per_s,
                plan->throughput_inf_per_s - 1e-9);
    }
  }
}

TEST(Dosa, Validation) {
  auto layers = speednet_layers();
  EXPECT_FALSE(dosa::partition(layers, 0).has_value());
}
