# Standalone schema/threshold check for BENCH_compile.json (cmake -P,
# CI-friendly): revalidates the gated numbers the bench binary self-checks,
# so a silent regression in the emitted document cannot pass unnoticed.
# Usage:
#   cmake -DCOMPILE_JSON=<path> -P check_compile_json.cmake
if(NOT DEFINED COMPILE_JSON)
  message(FATAL_ERROR "pass -DCOMPILE_JSON=<path to BENCH_compile.json>")
endif()
file(READ "${COMPILE_JSON}" doc)

string(JSON bench GET "${doc}" bench)
if(NOT bench STREQUAL "compile")
  message(FATAL_ERROR "bench != compile (got '${bench}')")
endif()

function(require_true path)
  string(JSON value GET "${doc}" ${ARGN})
  if(NOT value STREQUAL "ON" AND NOT value STREQUAL "true")
    message(FATAL_ERROR "${path}: expected true, got '${value}'")
  endif()
endfunction()

function(require_at_least path threshold)
  string(JSON value GET "${doc}" ${ARGN})
  if(NOT value GREATER_EQUAL ${threshold})
    message(FATAL_ERROR "${path}: ${value} < required ${threshold}")
  endif()
endfunction()

# Clone fast path: byte-identical to the generic baseline and at least the
# gated speedup over it.
require_true("clone.byte_identical" clone byte_identical)
require_at_least("clone.speedup_vs_generic" 1.5 clone speedup_vs_generic)

# Allocation gate: only meaningful when the counting hook is live (it is
# stubbed out under the sanitizer presets, where the bench reports
# alloc_counter_available=false and the per-op number is zero by fiat).
string(JSON alloc_available GET "${doc}" clone alloc_counter_available)
if(alloc_available STREQUAL "ON" OR alloc_available STREQUAL "true")
  string(JSON per_op GET "${doc}" clone allocs_per_cloned_op)
  if(per_op GREATER 0.25)
    message(FATAL_ERROR
      "clone.allocs_per_cloned_op: ${per_op} > 0.25 — the clone fast path "
      "is touching the global heap per op again")
  endif()
endif()

# Parallel + incremental compile_many: byte identity and gated speedups.
# The parallel floor is derived independently of the bench's self-declared
# target: four workers must beat serial by >=1.25x on any multi-core host;
# a single-core host cannot show a parallel win, so the floor degrades to
# an overhead-tolerance bound there (mirroring the bench's own gate).
require_true("compile_many.parallel_byte_identical"
  compile_many parallel_byte_identical)
require_true("compile_many.incremental_byte_identical"
  compile_many incremental_byte_identical)
cmake_host_system_information(RESULT cores QUERY NUMBER_OF_LOGICAL_CORES)
if(cores GREATER_EQUAL 2)
  set(parallel_floor 1.25)
else()
  set(parallel_floor 0.8)
endif()
require_at_least("compile_many.parallel_speedup" ${parallel_floor}
  compile_many parallel_speedup)
require_at_least("compile_many.incremental_speedup" 3.0
  compile_many incremental_speedup)

# Pass pipeline identity and the bench's own verdict.
require_true("passes.byte_identical" passes byte_identical)
require_true("ok" ok)

message(STATUS "BENCH_compile.json: clone + parallel compile gates hold")
