// Tests for the traffic macroscopic model: ODM generation, demand routing,
// BPR congestion, prediction coefficients, and daily EMA updates (§II-D).

#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hpp"
#include "usecases/traffic_model.hpp"

namespace tr = everest::usecases::traffic;

namespace {

struct Built {
  tr::RoadNetwork net = tr::make_grid_network(5, 1.0, 3);
  tr::OdMatrix odm;
  tr::TrafficModel model;
};

Built build(std::uint64_t seed = 7) {
  Built b;
  b.odm = tr::make_odm(b.net, 15000.0, seed);
  auto model = tr::build_model(b.net, b.odm, seed + 1);
  EXPECT_TRUE(model.has_value());
  b.model = std::move(*model);
  return b;
}

}  // namespace

TEST(Odm, ProfileAndTotals) {
  auto net = tr::make_grid_network(4, 1.0, 1);
  auto odm = tr::make_odm(net, 500.0, 2);
  EXPECT_EQ(odm.zones, 25);
  double profile_sum = 0.0;
  for (double d : odm.diurnal) profile_sum += d;
  EXPECT_NEAR(profile_sum, 1.0, 1e-9);
  // No self-trips; totals roughly match the requested volume.
  double total = 0.0;
  for (int i = 0; i < odm.zones; ++i) {
    EXPECT_DOUBLE_EQ(odm.trips[static_cast<std::size_t>(i * odm.zones + i)],
                     0.0);
    for (int j = 0; j < odm.zones; ++j)
      total += odm.trips[static_cast<std::size_t>(i * odm.zones + j)];
  }
  EXPECT_NEAR(total, 500.0 * 25, 1.0);
  // Rush hour departs more than night.
  EXPECT_GT(odm.demand(0, 1, 32), odm.demand(0, 1, 8));  // 08:00 vs 02:00
}

TEST(Bpr, MonotoneCongestion) {
  double free_flow = 60.0;
  EXPECT_NEAR(tr::bpr_speed(free_flow, 0.0, 600.0), 60.0, 1e-12);
  double half = tr::bpr_speed(free_flow, 300.0, 600.0);
  double full = tr::bpr_speed(free_flow, 600.0, 600.0);
  double over = tr::bpr_speed(free_flow, 1200.0, 600.0);
  EXPECT_GT(half, full);
  EXPECT_GT(full, over);
  EXPECT_NEAR(full, 60.0 / 1.15, 1e-9);  // BPR at capacity
}

TEST(TrafficModel, FlowConservation) {
  auto b = build();
  // Every vehicle trip contributes path-length segment-traversals; total
  // segment flow must equal sum over OD pairs of demand * manhattan length.
  double expected = 0.0;
  int side = b.net.grid_n + 1;
  for (int i = 0; i < b.odm.zones; ++i) {
    for (int j = 0; j < b.odm.zones; ++j) {
      double trips = b.odm.trips[static_cast<std::size_t>(i * b.odm.zones + j)];
      double manhattan = std::abs(i / side - j / side) +
                         std::abs(i % side - j % side);
      expected += trips * manhattan;
    }
  }
  double measured = 0.0;
  for (const auto &seg : b.model.segments)
    for (double f : seg.flow) measured += f;
  EXPECT_NEAR(measured, expected, expected * 1e-9);
}

TEST(TrafficModel, RushHourCongestsCentralSegments) {
  auto b = build();
  // Globally, mean speed at 08:00 is below mean speed at 03:00.
  double rush = 0.0, night = 0.0;
  for (const auto &seg : b.model.segments) {
    rush += seg.speed_kmh[32];   // 08:00
    night += seg.speed_kmh[12];  // 03:00
  }
  EXPECT_LT(rush, night);
  // Intensity = flow / speed everywhere.
  const auto &s0 = b.model.segments[10];
  for (int q = 0; q < tr::kIntervals; q += 17) {
    auto i = static_cast<std::size_t>(q);
    EXPECT_NEAR(s0.intensity[i], s0.flow[i] / s0.speed_kmh[i], 1e-9);
  }
}

TEST(TrafficModel, PredictionCoefficientsFitProfiles) {
  auto b = build();
  // The harmonic model should track the daily speed profile decently on
  // most segments (two harmonics catch the two rush dips only partially,
  // but correlation should be clearly positive on loaded segments).
  int evaluated = 0, good = 0;
  for (std::size_t s = 0; s < b.model.segments.size(); ++s) {
    const auto &state = b.model.segments[s];
    double range = *std::max_element(state.speed_kmh.begin(),
                                     state.speed_kmh.end()) -
                   *std::min_element(state.speed_kmh.begin(),
                                     state.speed_kmh.end());
    if (range < 3.0) continue;  // unloaded segment: profile is noise
    std::vector<double> predicted(tr::kIntervals);
    for (int q = 0; q < tr::kIntervals; ++q)
      predicted[static_cast<std::size_t>(q)] = b.model.coeffs[s].predict(q);
    double corr = everest::support::pearson(predicted, state.speed_kmh);
    ++evaluated;
    good += corr > 0.5;
  }
  ASSERT_GT(evaluated, 5);
  EXPECT_GT(static_cast<double>(good) / evaluated, 0.8);
}

TEST(TrafficModel, FitRecoversExactHarmonics) {
  std::vector<double> profile(tr::kIntervals);
  double w = 2.0 * M_PI / tr::kIntervals;
  for (int q = 0; q < tr::kIntervals; ++q) {
    profile[static_cast<std::size_t>(q)] =
        42.0 + 3.0 * std::sin(w * q) - 2.0 * std::cos(2.0 * w * q);
  }
  auto fit = tr::fit_prediction(profile);
  EXPECT_NEAR(fit.c[0], 42.0, 1e-9);
  EXPECT_NEAR(fit.c[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.c[2], 0.0, 1e-9);
  EXPECT_NEAR(fit.c[3], 0.0, 1e-9);
  EXPECT_NEAR(fit.c[4], -2.0, 1e-9);
  for (int q = 0; q < tr::kIntervals; ++q)
    EXPECT_NEAR(fit.predict(q), profile[static_cast<std::size_t>(q)], 1e-9);
}

TEST(TrafficModel, DailyUpdateConverges) {
  auto base = build(7);
  // Feed five days of a different regime: model speeds drift toward it.
  auto other = build(99);
  double before = base.model.segments[5].speed_kmh[32];
  double target = other.model.segments[5].speed_kmh[32];
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(tr::update_model(base.model, other.model, 0.5).is_ok());
  }
  double after = base.model.segments[5].speed_kmh[32];
  EXPECT_LT(std::fabs(after - target), std::fabs(before - target));
  EXPECT_EQ(base.model.days_integrated, 6);
}

TEST(TrafficModel, UpdateValidation) {
  auto b = build();
  tr::TrafficModel wrong;
  EXPECT_FALSE(tr::update_model(b.model, wrong).is_ok());
  EXPECT_FALSE(tr::update_model(b.model, b.model, 0.0).is_ok());
  EXPECT_FALSE(tr::update_model(b.model, b.model, 1.5).is_ok());
}

TEST(TrafficModel, ZoneMismatchRejected) {
  auto net = tr::make_grid_network(5, 1.0, 3);
  auto small_net = tr::make_grid_network(3, 1.0, 3);
  auto odm = tr::make_odm(small_net, 100.0, 1);
  EXPECT_FALSE(tr::build_model(net, odm, 1).has_value());
}
