// Tests for the Accelerated-WRF ensemble workflow (paper §VIII).

#include <gtest/gtest.h>

#include "usecases/wrf_workflow.hpp"

namespace wrf = everest::usecases::wrf;

TEST(WrfWorkflow, FpgaNodesAccelerate) {
  wrf::WorkflowConfig config;
  config.ensemble_members = 4;
  config.timesteps = 6;
  config.fpga_nodes = 2;
  config.nodes = 4;
  config.state_bytes = 4'000'000;  // small state: transfers don't dominate
  auto report = wrf::run_ensemble(config);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_GT(report->speedup, 1.05);
  EXPECT_GT(report->radiation_tasks_on_fpga, 0);
  EXPECT_LT(report->makespan_ms, report->cpu_only_makespan_ms);
}

TEST(WrfWorkflow, NoFpgaNodesNoSpeedup) {
  wrf::WorkflowConfig config;
  config.ensemble_members = 3;
  config.timesteps = 4;
  config.fpga_nodes = 0;
  config.nodes = 4;
  auto report = wrf::run_ensemble(config);
  ASSERT_TRUE(report.has_value());
  EXPECT_NEAR(report->speedup, 1.0, 1e-9);
  EXPECT_EQ(report->radiation_tasks_on_fpga, 0);
}

TEST(WrfWorkflow, AmdahlBoundsTheSpeedup) {
  wrf::WorkflowConfig config;
  config.ensemble_members = 2;
  config.timesteps = 8;
  config.fpga_nodes = 4;
  config.nodes = 4;
  config.state_bytes = 1'000'000;
  config.radiation_speedup = 1000.0;  // radiation becomes ~free
  auto report = wrf::run_ensemble(config);
  ASSERT_TRUE(report.has_value());
  // Amdahl with 30% accelerable work: cap = 1 / 0.7 ~ 1.43.
  double cap = (config.dynamics_ms + config.radiation_ms) / config.dynamics_ms;
  EXPECT_LE(report->speedup, cap + 0.05);
  EXPECT_GT(report->speedup, 1.15);
}

TEST(WrfWorkflow, Validation) {
  wrf::WorkflowConfig bad;
  bad.ensemble_members = 0;
  EXPECT_FALSE(wrf::run_ensemble(bad).has_value());
  bad.ensemble_members = 2;
  bad.fpga_nodes = 99;
  EXPECT_FALSE(wrf::run_ensemble(bad).has_value());
  bad.fpga_nodes = 1;
  bad.radiation_speedup = 0.0;
  EXPECT_FALSE(wrf::run_ensemble(bad).has_value());
}

TEST(WrfWorkflow, MoreMembersMoreWork) {
  auto run = [](int members) {
    wrf::WorkflowConfig config;
    config.ensemble_members = members;
    config.timesteps = 4;
    config.nodes = 2;
    config.fpga_nodes = 1;
    auto r = wrf::run_ensemble(config);
    EXPECT_TRUE(r.has_value());
    return r->makespan_ms;
  };
  EXPECT_GT(run(16), run(2));
}
