// Pass-pipeline tests: anchoring semantics, serial-vs-parallel determinism,
// and the per-pass incremental cache. The randomized differential cases are
// the "concurrency"-labeled contract for the parallel fan-out: a pipeline of
// func-anchored passes must produce byte-identical modules whether it runs
// on the caller thread or sharded across a ThreadPool, across many seeds.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/ir.hpp"
#include "ir/pass.hpp"
#include "sdk/compile_cache.hpp"
#include "support/thread_pool.hpp"
#include "transforms/canonicalize.hpp"

namespace ei = everest::ir;
namespace es = everest::support;

namespace {

// A teil.func whose body is a random DAG of f64 arithmetic with deliberate
// redundancy (duplicate subexpressions for CSE, unused results for DCE) so
// canonicalize has real work to do per func.
void add_random_func(ei::Module &m, const std::string &name,
                     std::mt19937 &rng, std::size_t num_ops) {
  ei::Operation *func = ei::Operation::create(
      m.arena(), ei::Symbol("teil.func"), {}, {},
      {{"sym_name", ei::Attribute(name)}}, 1);
  ei::Block &body = func->region(0).add_block();
  ei::OpBuilder b(&body);

  std::uniform_real_distribution<double> lit(-4.0, 4.0);
  std::vector<ei::Value *> vals;
  vals.push_back(b.constant_f64(lit(rng)));
  vals.push_back(b.constant_f64(lit(rng)));
  for (std::size_t i = 0; i < num_ops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, vals.size() - 1);
    ei::Value *lhs = vals[pick(rng)];
    ei::Value *rhs = vals[pick(rng)];
    const char *op = (rng() % 2 == 0) ? "arith.addf" : "arith.mulf";
    ei::Value *v = b.create_value(op, {lhs, rhs}, ei::Type::floating(64));
    // Sometimes emit an exact duplicate (CSE fodder) or leave a value with
    // no eventual consumer (DCE fodder).
    if (rng() % 4 == 0)
      b.create_value(op, {lhs, rhs}, ei::Type::floating(64));
    if (rng() % 3 != 0) vals.push_back(v);
  }
  b.create("teil.output", {vals.back()}, {},
           {{"name", ei::Attribute(std::string("out"))}});
  m.body().attach(func);
}

ei::Module build_random_module(unsigned seed, std::size_t num_funcs,
                               std::size_t ops_per_func) {
  std::mt19937 rng(seed);
  ei::Module m;
  for (std::size_t i = 0; i < num_funcs; ++i)
    add_random_func(m, "k" + std::to_string(i), rng, ops_per_func);
  return m;
}

// The reference pipeline used by the differential tests: canonicalize each
// func, then tag it so we can observe that every func was visited.
void add_reference_pipeline(ei::PassManager &pm) {
  pm.add_func_pass("canonicalize", [](ei::Operation &func, ei::Context &) {
    return everest::transforms::canonicalize_func_checked(func);
  });
  pm.add_func_pass("tag", [](ei::Operation &func, ei::Context &) {
    func.set_attr("pipeline.done", ei::Attribute(true));
    return es::Status::ok();
  });
}

}  // namespace

// ----------------------------------------------------------------- Anchoring

TEST(PassPipeline, ModuleAndFuncAnchorsDispatchCorrectly) {
  ei::Context ctx;
  ei::Module m = build_random_module(/*seed=*/1, /*num_funcs=*/3,
                                     /*ops_per_func=*/6);

  int module_runs = 0;
  int func_runs = 0;
  ei::PassManager pm(ctx);
  pm.add_pass("count-module", [&](ei::Module &, ei::Context &) {
    ++module_runs;
    return es::Status::ok();
  });
  pm.add_func_pass("count-func", [&](ei::Operation &, ei::Context &) {
    ++func_runs;
    return es::Status::ok();
  });
  es::Status st = pm.run(m);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_EQ(module_runs, 1);
  EXPECT_EQ(func_runs, 3);  // once per top-level func op

  // Timings cover both anchors, in pipeline order.
  ASSERT_EQ(pm.timings().size(), 2u);
  EXPECT_EQ(pm.timings()[0].name, "count-module");
  EXPECT_EQ(pm.timings()[1].name, "count-func");
}

TEST(PassPipeline, FuncPassFailurePropagates) {
  ei::Context ctx;
  ei::Module m = build_random_module(2, 2, 4);
  ei::PassManager pm(ctx);
  pm.add_func_pass("fail", [](ei::Operation &func, ei::Context &) {
    if (func.attr("sym_name")->as_string() == "k1")
      return es::Status::failure("injected failure");
    return es::Status::ok();
  });
  auto status = pm.run(m);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("injected failure"), std::string::npos);
}

// ------------------------------------------- Serial vs parallel determinism

TEST(PassPipeline, RandomizedDifferentialSerialVsParallel) {
  es::ThreadPool pool(4);
  for (unsigned seed = 0; seed < 8; ++seed) {
    ei::Module serial_mod = build_random_module(seed, 6, 24);
    ei::Module parallel_mod = ei::clone_module(serial_mod);
    ASSERT_EQ(serial_mod.str(), parallel_mod.str()) << "seed " << seed;

    ei::Context ctx;
    ei::PassManager serial_pm(ctx);
    add_reference_pipeline(serial_pm);
    ASSERT_TRUE(serial_pm.run(serial_mod).is_ok()) << "seed " << seed;

    ei::PassManager parallel_pm(ctx);
    add_reference_pipeline(parallel_pm);
    parallel_pm.set_thread_pool(&pool);
    ASSERT_TRUE(parallel_pm.run(parallel_mod).is_ok()) << "seed " << seed;

    // The whole point of the redesign: fan-out must be unobservable.
    EXPECT_EQ(serial_mod.str(), parallel_mod.str()) << "seed " << seed;

    // And the pipeline actually changed the IR (passes were not no-ops).
    ASSERT_EQ(serial_pm.timings().size(), 2u);
    EXPECT_LT(serial_pm.timings()[0].ops_after,
              serial_pm.timings()[0].ops_before)
        << "seed " << seed;
  }
}

TEST(PassPipeline, ParallelRunIsIdempotentAcrossRepeats) {
  es::ThreadPool pool(3);
  ei::Module reference = build_random_module(99, 5, 20);
  std::string expected;
  for (int rep = 0; rep < 4; ++rep) {
    ei::Module m = ei::clone_module(reference);
    ei::Context ctx;
    ei::PassManager pm(ctx);
    add_reference_pipeline(pm);
    pm.set_thread_pool(&pool);
    ASSERT_TRUE(pm.run(m).is_ok());
    if (rep == 0)
      expected = m.str();
    else
      EXPECT_EQ(m.str(), expected) << "rep " << rep;
  }
}

// ----------------------------------------------------- Per-pass cache tier

TEST(PassPipeline, PassCacheHitsOnSecondRunAndStaysByteIdentical) {
  everest::sdk::PassResultCache cache;
  es::ThreadPool pool(2);

  ei::Module first = build_random_module(7, 4, 16);
  ei::Module second = ei::clone_module(first);

  ei::Context ctx;
  ei::PassManager cold(ctx);
  add_reference_pipeline(cold);
  cold.set_pass_cache(&cache);
  ASSERT_TRUE(cold.run(first).is_ok());
  EXPECT_EQ(cold.cache_stats().hits, 0);
  EXPECT_EQ(cold.cache_stats().misses, 8);  // 4 funcs x 2 func passes
  EXPECT_EQ(cache.misses(), 8);

  ei::PassManager warm(ctx);
  add_reference_pipeline(warm);
  warm.set_pass_cache(&cache);
  warm.set_thread_pool(&pool);
  ASSERT_TRUE(warm.run(second).is_ok());
  EXPECT_EQ(warm.cache_stats().hits, 8);
  EXPECT_EQ(warm.cache_stats().misses, 0);
  EXPECT_EQ(cache.hits(), 8);

  // A cached replay must be indistinguishable from the real pipeline.
  EXPECT_EQ(second.str(), first.str());
}

TEST(PassPipeline, OneKernelEditOnlyReRunsThatKernel) {
  everest::sdk::PassResultCache cache;

  ei::Module before = build_random_module(11, 3, 12);
  ei::Module after = ei::clone_module(before);
  // Edit exactly one kernel: append an extra op to k1's body.
  {
    ei::Operation *k1 = nullptr;
    for (ei::Operation &op : after.body()) {
      if (const ei::Attribute *sym = op.attr("sym_name");
          sym && sym->as_string() == "k1")
        k1 = &op;
    }
    ASSERT_NE(k1, nullptr);
    ei::OpBuilder b(&k1->region(0).front());
    ei::Value *c = b.constant_f64(123.0);
    b.create("teil.output", {c}, {},
             {{"name", ei::Attribute(std::string("extra"))}});
  }

  ei::Context ctx;
  ei::PassManager cold(ctx);
  add_reference_pipeline(cold);
  cold.set_pass_cache(&cache);
  ASSERT_TRUE(cold.run(before).is_ok());
  EXPECT_EQ(cold.cache_stats().misses, 6);  // 3 funcs x 2 passes

  ei::PassManager warm(ctx);
  add_reference_pipeline(warm);
  warm.set_pass_cache(&cache);
  ASSERT_TRUE(warm.run(after).is_ok());
  // k0 and k2 replay from the cache for both passes; only the edited k1
  // misses. (Its "tag" stage also misses: the edit changes the text that
  // feeds the second pass's fingerprint.)
  EXPECT_EQ(warm.cache_stats().hits, 4);
  EXPECT_EQ(warm.cache_stats().misses, 2);
}

TEST(PassPipeline, FingerprintSeparatesPassesAndBodies) {
  const std::uint64_t a = ei::pass_fingerprint("canonicalize", "body-1");
  const std::uint64_t b = ei::pass_fingerprint("canonicalize", "body-2");
  const std::uint64_t c = ei::pass_fingerprint("tag", "body-1");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, ei::pass_fingerprint("canonicalize", "body-1"));
}

TEST(PassPipeline, PassResultCacheEvictsWholesaleAtCapacity) {
  everest::sdk::PassResultCache cache(/*capacity=*/2);
  ei::Module m = build_random_module(21, 1, 4);
  const ei::Operation &func = m.body().front();
  cache.store(1, func);
  cache.store(2, func);
  EXPECT_EQ(cache.size(), 2u);
  cache.store(3, func);  // over capacity: wholesale reset, then insert
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}
