// Tests for the language frontends: EKL, CFDlang, ConDRust, and the
// ONNX-style model importer.

#include <gtest/gtest.h>

#include "dialects/registry.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "frontend/onnx_import.hpp"

namespace ef = everest::frontend;
namespace ei = everest::ir;
namespace en = everest::numerics;

class FrontendTest : public ::testing::Test {
protected:
  void SetUp() override {
    everest::dialects::register_everest_dialects(ctx_);
  }
  ei::Context ctx_;
};

// ------------------------------------------------------------------- EKL

TEST_F(FrontendTest, EklMinimalProgram) {
  auto m = ef::parse_ekl(R"(
kernel scale
index i
input a[i]
b = a[i] * 2
output b
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  EXPECT_TRUE(ctx_.verify(**m).is_ok());
  EXPECT_NE((*m)->find_first("ekl.kernel"), nullptr);
  EXPECT_EQ((*m)->find_all("ekl.binary").size(), 1u);
}

TEST_F(FrontendTest, EklSumAndSelect) {
  auto m = ef::parse_ekl(R"(
kernel k
index i, j
input a[i, j]
input t
s = sum(j) select(a[i, j] <= t, a[i, j], t)
output s
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  EXPECT_TRUE(ctx_.verify(**m).is_ok());
  EXPECT_EQ((*m)->find_all("ekl.sum").size(), 1u);
  EXPECT_EQ((*m)->find_all("ekl.select").size(), 1u);
  EXPECT_EQ((*m)->find_all("ekl.compare").size(), 1u);
}

TEST_F(FrontendTest, EklStackSyntax) {
  auto m = ef::parse_ekl(R"(
kernel k
index i
input j[i]
pair = [j, j + 1]
output pair
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  auto stacks = (*m)->find_all("ekl.stack");
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0]->num_operands(), 2u);
}

TEST_F(FrontendTest, EklErrors) {
  // Undefined name.
  EXPECT_FALSE(ef::parse_ekl("kernel k\nb = nope\noutput b\n").has_value());
  // No outputs.
  EXPECT_FALSE(ef::parse_ekl("kernel k\nindex i\ninput a[i]\n").has_value());
  // Duplicate definition.
  EXPECT_FALSE(ef::parse_ekl(R"(
kernel k
index i
input a[i]
a = a * 2
output a
)").has_value());
  // Over-subscription.
  EXPECT_FALSE(ef::parse_ekl(R"(
kernel k
index i, j
input a[i]
b = a[i, j]
output b
)").has_value());
  // Assignment to an index.
  EXPECT_FALSE(ef::parse_ekl(R"(
kernel k
index i
input a[i]
i = a
output a
)").has_value());
}

TEST_F(FrontendTest, EklFig3ParsesAndVerifies) {
  // The paper's Fig. 3 kernel, as shipped in the RRTMG use case.
  auto m = ef::parse_ekl(R"(
kernel fig3
index x, g, bnd, t, p, e
input pres[x]
input strato
input bnd_to_flav[s, bnd]
input j_T[x]
input j_p[x]
input j_eta[f, x]
input r_mix[f, x, e]
input f_major[f, x, t, p, e]
input k_major[T, P, H, g]
i_strato = select(pres[x] <= strato, 1, 0)
i_flav = bnd_to_flav[i_strato, bnd]
i_T = [j_T, j_T + 1]
i_eta = [j_eta[i_flav, x], j_eta[i_flav, x] + 1]
i_p = [j_p + i_strato, j_p + i_strato + 1]
tau_abs = r_mix[i_flav, x, e] * f_major[i_flav, x, t, p, e] * k_major[i_T[x, t], i_p[x, p], i_eta[x, bnd, e], g]
tau = sum(t, p, e) tau_abs
output tau
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  EXPECT_TRUE(ctx_.verify(**m).is_ok()) << ctx_.verify(**m).message();
  EXPECT_EQ((*m)->find_all("ekl.stack").size(), 3u);
  EXPECT_EQ((*m)->find_all("ekl.gather").size(), 10u);
}

TEST_F(FrontendTest, EklLineCount) {
  EXPECT_EQ(ef::count_ekl_lines("# comment\na = 1\n\nb = 2\n"), 2u);
}

// ---------------------------------------------------------------- CFDlang

TEST_F(FrontendTest, CfdlangMatmulProgram) {
  auto m = ef::parse_cfdlang(R"(
program mm
input A : [4, 5]
input B : [5, 6]
output C = contract(outer(A, B), 1, 2)
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  EXPECT_TRUE(ctx_.verify(**m).is_ok()) << ctx_.verify(**m).message();
  auto contracts = (*m)->find_all("cfdlang.contract");
  ASSERT_EQ(contracts.size(), 1u);
  EXPECT_EQ(contracts[0]->result(0)->type().str(), "tensor<4x6xf64>");
}

TEST_F(FrontendTest, CfdlangErrors) {
  EXPECT_FALSE(ef::parse_cfdlang("program p\ninput A : [2]\n").has_value());
  EXPECT_FALSE(
      ef::parse_cfdlang("program p\noutput C = undefined_name\n").has_value());
  // Contraction dims of different extents.
  EXPECT_FALSE(ef::parse_cfdlang(R"(
program p
input A : [2, 3]
output C = contract(A, 0, 1)
)").has_value());
}

TEST_F(FrontendTest, CfdlangTranspose) {
  auto m = ef::parse_cfdlang(R"(
program t
input A : [2, 3]
output B = transpose(A, 1, 0)
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  auto ops = (*m)->find_all("cfdlang.transpose");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0]->result(0)->type().str(), "tensor<3x2xf64>");
}

// --------------------------------------------------------------- ConDRust

TEST_F(FrontendTest, CondrustFig4MapMatching) {
  auto m = ef::parse_condrust(R"(
// Fig. 4: map matching a single element
fn map_match(points: Stream<Point>) -> Stream<Seg> {
    #[fpga]
    let cands = candidates(points);
    let scored = emission_score(cands, points);
    let path = fold viterbi_step(scored);
    let out = decode(path);
    return out;
}
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  EXPECT_TRUE(ctx_.verify(**m).is_ok()) << ctx_.verify(**m).message();
  auto nodes = (*m)->find_all("dfg.node");
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_EQ((*m)->find_all("dfg.fold").size(), 1u);
  // The #[fpga] attribute landed on `candidates`.
  bool found = false;
  for (auto *n : nodes) {
    if (n->attr_string("callee") == "candidates") {
      EXPECT_EQ(n->attr_string("placement"), "fpga");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FrontendTest, CondrustOwnershipRebindRejected) {
  auto m = ef::parse_condrust(R"(
fn f(xs: Stream<f64>) -> Stream<f64> {
    let a = g(xs);
    let a = h(a);
    return a;
}
)");
  EXPECT_FALSE(m.has_value());
}

TEST_F(FrontendTest, CondrustErrors) {
  EXPECT_FALSE(ef::parse_condrust("let a = f(x);").has_value());  // no fn
  EXPECT_FALSE(ef::parse_condrust(R"(
fn f(xs: Stream<f64>) -> Stream<f64> {
    let a = g(nope);
    return a;
}
)").has_value());
  EXPECT_FALSE(ef::parse_condrust(R"(
fn f(xs: Stream<f64>) -> Stream<f64> {
    let a = g(xs);
}
)").has_value());  // no return
}

// ------------------------------------------------------------------- ONNX

TEST_F(FrontendTest, OnnxImportAndRun) {
  const char *json = R"({
    "name": "tiny",
    "inputs": [{"name": "x", "shape": [2]}],
    "initializers": [
      {"name": "W", "shape": [2, 2], "data": [1, 0, 0, 1]},
      {"name": "b", "shape": [2], "data": [0.5, -0.5]}
    ],
    "nodes": [
      {"op": "Gemm", "name": "fc", "inputs": ["x", "W", "b"], "output": "y"},
      {"op": "Relu", "name": "act", "inputs": ["y"], "output": "z"}
    ],
    "outputs": ["z"]
  })";
  auto model = ef::import_onnx_json(json);
  ASSERT_TRUE(model.has_value()) << model.error().message;
  EXPECT_EQ(model->parameter_count(), 6u);

  std::map<std::string, en::Tensor> inputs;
  inputs.emplace("x", en::Tensor(en::Shape{2}, std::vector<double>{1.0, -2.0}));
  auto out = ef::run_onnx(*model, inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &z = out->at("z");
  EXPECT_DOUBLE_EQ(z(0), 1.5);   // 1 + 0.5
  EXPECT_DOUBLE_EQ(z(1), 0.0);   // relu(-2.5)
}

TEST_F(FrontendTest, OnnxConvPipeline) {
  // Conv1D (identity kernel) -> MaxPool1D -> Flatten.
  const char *json = R"({
    "name": "conv",
    "inputs": [{"name": "x", "shape": [1, 4]}],
    "initializers": [
      {"name": "w", "shape": [1, 1, 1], "data": [2.0]}
    ],
    "nodes": [
      {"op": "Conv1D", "inputs": ["x", "w"], "output": "c"},
      {"op": "MaxPool1D", "inputs": ["c"], "output": "p", "attrs": {"window": 2}},
      {"op": "Flatten", "inputs": ["p"], "output": "f"}
    ],
    "outputs": ["f"]
  })";
  auto model = ef::import_onnx_json(json);
  ASSERT_TRUE(model.has_value()) << model.error().message;
  std::map<std::string, en::Tensor> inputs;
  inputs.emplace("x",
                 en::Tensor(en::Shape{1, 4}, std::vector<double>{1, 3, 2, 5}));
  auto out = ef::run_onnx(*model, inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  const auto &f = out->at("f");
  ASSERT_EQ(f.size(), 2);
  EXPECT_DOUBLE_EQ(f(0), 6.0);   // max(2, 6)
  EXPECT_DOUBLE_EQ(f(1), 10.0);  // max(4, 10)
}

TEST_F(FrontendTest, OnnxErrors) {
  EXPECT_FALSE(ef::import_onnx_json("{").has_value());
  EXPECT_FALSE(ef::import_onnx_json(R"({"nodes": [], "outputs": []})")
                   .has_value());
  // Data/shape mismatch.
  EXPECT_FALSE(ef::import_onnx_json(R"({
    "inputs": [], "outputs": ["y"],
    "initializers": [{"name": "w", "shape": [3], "data": [1, 2]}],
    "nodes": [{"op": "Relu", "inputs": ["w"], "output": "y"}]
  })").has_value());
}
