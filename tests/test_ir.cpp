// Unit tests for the IR core: types, attributes, op/use-list mechanics,
// verification, printing/parsing round trips, passes, and rewrites.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <utility>

#include "dialects/ekl.hpp"
#include "dialects/registry.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/pass.hpp"
#include "ir/rewrite.hpp"

namespace ei = everest::ir;
namespace ed = everest::dialects;

// --------------------------------------------------------------------- Types

TEST(Types, PrintBasics) {
  EXPECT_EQ(ei::Type::floating(64).str(), "f64");
  EXPECT_EQ(ei::Type::integer(1).str(), "i1");
  EXPECT_EQ(ei::Type::index().str(), "index");
  EXPECT_EQ(ei::Type::none().str(), "none");
}

TEST(Types, PrintTensorAndCustom) {
  auto t = ei::Type::tensor({4, -1}, ei::Type::floating(32));
  EXPECT_EQ(t.str(), "tensor<4x?xf32>");
  auto c = ei::Type::custom("base2", "fixed", {"16", "8"});
  EXPECT_EQ(c.str(), "!base2.fixed<16,8>");
}

TEST(Types, ParseRoundTrip) {
  for (const char *text :
       {"f64", "i32", "index", "none", "tensor<4x5xf64>", "tensor<?xf32>",
        "tensor<f64>", "!base2.posit<16,1>", "!dfg.stream<f64>"}) {
    auto t = ei::Type::parse(text);
    ASSERT_TRUE(t.has_value()) << text;
    EXPECT_EQ(t->str(), text);
  }
}

TEST(Types, ParseRejectsGarbage) {
  EXPECT_FALSE(ei::Type::parse("").has_value());
  EXPECT_FALSE(ei::Type::parse("floof").has_value());
  EXPECT_FALSE(ei::Type::parse("!nodot").has_value());
}

TEST(Types, Equality) {
  EXPECT_EQ(ei::Type::floating(64), ei::Type::floating(64));
  EXPECT_NE(ei::Type::floating(64), ei::Type::floating(32));
  EXPECT_EQ(ei::Type::tensor({2}, ei::Type::floating(64)),
            ei::Type::tensor({2}, ei::Type::floating(64)));
  EXPECT_NE(ei::Type::tensor({2}, ei::Type::floating(64)),
            ei::Type::tensor({3}, ei::Type::floating(64)));
}

TEST(Types, NumElements) {
  EXPECT_EQ(ei::Type::tensor({2, 3}, ei::Type::floating(64)).num_elements(), 6);
  EXPECT_EQ(ei::Type::tensor({2, -1}, ei::Type::floating(64)).num_elements(), -1);
  EXPECT_EQ(ei::Type::floating(64).num_elements(), 1);
}

// ---------------------------------------------------------------- Attributes

TEST(Attributes, RoundTrip) {
  for (const char *text :
       {"unit", "true", "false", "42", "-7", "1.5", "\"hello\"",
        "[1, 2, 3]", "[\"a\", \"b\"]", "f64", "tensor<2xf32>"}) {
    auto a = ei::Attribute::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(a->str(), text) << text;
  }
}

TEST(Attributes, DoubleKeepsDecimalPoint) {
  ei::Attribute a(2.0);
  EXPECT_EQ(a.str(), "2.0");
  auto round = ei::Attribute::parse(a.str());
  ASSERT_TRUE(round.has_value());
  EXPECT_TRUE(round->is_double());
}

TEST(Attributes, IntVectorHelpers) {
  auto a = ei::Attribute::int_array({3, 1, 4});
  EXPECT_EQ(a.as_int_vector(), (std::vector<std::int64_t>{3, 1, 4}));
  auto s = ei::Attribute::string_array({"x", "y"});
  EXPECT_EQ(s.as_string_vector(), (std::vector<std::string>{"x", "y"}));
}

TEST(Attributes, NestedArrays) {
  auto a = ei::Attribute::parse("[[1, 2], [3]]");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->as_array()[0].as_array().size(), 2u);
}

// ----------------------------------------------------------------- IR basics

TEST(IrBasics, CreateOpAndResults) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *c = b.constant_f64(3.0);
  EXPECT_EQ(c->type().str(), "f64");
  EXPECT_EQ(c->defining_op()->name(), "arith.constant");
  EXPECT_EQ(module.body().size(), 1u);
}

TEST(IrBasics, UseListsMaintained) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  ei::Operation &add = b.create("arith.addf", {x, y}, {ei::Type::floating(64)});
  EXPECT_EQ(x->use_count(), 1u);
  EXPECT_EQ(*x->users().begin(), &add);
  add.set_operand(0, y);
  EXPECT_FALSE(x->has_uses());
  EXPECT_EQ(y->use_count(), 2u);
}

TEST(IrBasics, ReplaceAllUsesWith) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  b.create("arith.addf", {x, x}, {ei::Type::floating(64)});
  x->defining_op()->replace_all_uses_with({y});
  EXPECT_FALSE(x->has_uses());
  EXPECT_EQ(y->use_count(), 2u);
}

TEST(IrBasics, EraseUpdatesUseLists) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Operation &neg = b.create("arith.negf", {x}, {ei::Type::floating(64)});
  module.body().erase(&neg);
  EXPECT_FALSE(x->has_uses());
  EXPECT_EQ(module.body().size(), 1u);
}

TEST(IrBasics, WalkAndFind) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &outer = b.create("scf.execute_region", {}, {}, {}, 1);
  ei::Block &body = outer.region(0).add_block();
  ei::OpBuilder inner(&body);
  inner.constant_f64(1.0);
  inner.constant_f64(2.0);
  EXPECT_EQ(module.op_count(), 3u);
  EXPECT_EQ(module.find_all("arith.constant").size(), 2u);
  EXPECT_NE(module.find_first("scf.execute_region"), nullptr);
}

TEST(IrBasics, ParentLinks) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Operation &outer = b.create("scf.execute_region", {}, {}, {}, 1);
  ei::Block &body = outer.region(0).add_block();
  ei::OpBuilder inner(&body);
  ei::Value *c = inner.constant_f64(1.0);
  EXPECT_EQ(c->defining_op()->parent_op(), &outer);
  EXPECT_EQ(outer.parent_op(), &module.op());
}

// ----------------------------------------------------------- Use-list suite
//
// The intrusive use-list invariant: a value's list holds exactly one Use
// node per operand slot referencing it, each carrying the right user and
// slot index. `scan_uses` recomputes the ground truth from every live op's
// operand array; `list_uses` reads the intrusive list and cross-checks each
// node's back-pointers. The two must agree after any mutation sequence.

namespace {

using UseSet = std::multiset<std::pair<const ei::Operation *, std::size_t>>;

UseSet scan_uses(ei::Module &module, const ei::Value *v) {
  UseSet out;
  module.walk([&](ei::Operation &op) {
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (op.operand(i) == v) out.insert({&op, i});
    }
  });
  return out;
}

UseSet list_uses(const ei::Value *v) {
  UseSet out;
  for (const ei::Use &use : v->uses()) {
    EXPECT_EQ(use.get(), v);
    EXPECT_NE(use.user(), nullptr);
    EXPECT_EQ(use.user()->operand(use.operand_index()), v);
    out.insert({use.user(), use.operand_index()});
  }
  return out;
}

}  // namespace

TEST(UseLists, DuplicateOperandsOneUsePerSlot) {
  // An op using the same value in two slots must contribute exactly two Use
  // nodes with distinct slot indices — the vector-based users_ list could
  // desync this count under mixed set_operand/drop sequences; the intrusive
  // list holds it by construction.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  ei::Operation &add = b.create("arith.addf", {x, x}, {ei::Type::floating(64)});
  EXPECT_EQ(x->use_count(), 2u);
  EXPECT_EQ(list_uses(x), scan_uses(module, x));

  add.set_operand(0, y);
  EXPECT_EQ(x->use_count(), 1u);
  EXPECT_EQ(y->use_count(), 1u);
  EXPECT_EQ((*x->uses().begin()).operand_index(), 1u);
  EXPECT_EQ((*y->uses().begin()).operand_index(), 0u);
  EXPECT_EQ(list_uses(x), scan_uses(module, x));
  EXPECT_EQ(list_uses(y), scan_uses(module, y));

  add.drop_all_operands();
  EXPECT_FALSE(x->has_uses());
  EXPECT_FALSE(y->has_uses());
  EXPECT_EQ(add.num_operands(), 0u);
}

TEST(UseLists, DuplicateOperandsSurviveReplaceAllUses) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  ei::Operation &add = b.create("arith.addf", {x, x}, {ei::Type::floating(64)});
  x->defining_op()->replace_all_uses_with({y});
  EXPECT_FALSE(x->has_uses());
  EXPECT_EQ(y->use_count(), 2u);
  EXPECT_EQ(add.operand(0), y);
  EXPECT_EQ(add.operand(1), y);
  EXPECT_EQ(list_uses(y), scan_uses(module, y));
}

TEST(UseLists, ReplaceAllUsesWithIsSimultaneous) {
  // Regression: replacing r0 with r1 (another result of the same op) and r1
  // with z must behave as a simultaneous substitution. The old vector-based
  // implementation relinked eagerly, so the use just retargeted r0 -> r1
  // landed on r1's list and was replaced again with z in the r1 pass.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Type f64 = ei::Type::floating(64);
  ei::Operation &pair = b.create("test.pair", {}, {f64, f64});
  ei::Value *z = b.constant_f64(0.0);
  ei::Operation &user =
      b.create("test.use", {pair.result(0), pair.result(1)}, {});

  pair.replace_all_uses_with({pair.result(1), z});
  EXPECT_EQ(user.operand(0), pair.result(1));
  EXPECT_EQ(user.operand(1), z);
  EXPECT_FALSE(pair.result(0)->has_uses());
  EXPECT_EQ(pair.result(1)->use_count(), 1u);
  EXPECT_EQ(z->use_count(), 1u);
  EXPECT_EQ(list_uses(pair.result(1)), scan_uses(module, pair.result(1)));
}

TEST(UseLists, EraseWhileIterating) {
  // Consuming the use-list while erasing its users: each erase unlinks the
  // head use, so `*users().begin()` always yields a live op and the loop
  // terminates exactly after all users are gone.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  for (int i = 0; i < 3; ++i) b.create("test.sink", {x, x}, {});

  std::size_t erased = 0;
  while (x->has_uses()) {
    ei::Operation *user = *x->users().begin();
    module.body().erase(user);
    ++erased;
  }
  EXPECT_EQ(erased, 3u);
  EXPECT_EQ(module.body().size(), 1u);
  EXPECT_EQ(list_uses(x), scan_uses(module, x));
}

TEST(UseLists, SelfReferenceCycle) {
  // An op using its own result (feedback edges in dfg loops). The self-use
  // must count once, replace cleanly, and not confuse erase's tombstoning.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Type f64 = ei::Type::floating(64);
  ei::Operation &loop = b.create("test.loop", {}, {f64});
  loop.append_operand(loop.result(0));
  EXPECT_EQ(loop.result(0)->use_count(), 1u);
  EXPECT_EQ((*loop.result(0)->uses().begin()).user(), &loop);
  EXPECT_EQ(list_uses(loop.result(0)), scan_uses(module, loop.result(0)));

  ei::Value *c = b.constant_f64(0.0);
  loop.replace_all_uses_with({c});
  EXPECT_EQ(loop.operand(0), c);
  EXPECT_FALSE(loop.result(0)->has_uses());

  module.body().erase(&loop);
  EXPECT_FALSE(c->has_uses());
  EXPECT_TRUE(loop.erased());
}

TEST(UseLists, SelfReferenceEraseDirect) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Type f64 = ei::Type::floating(64);
  ei::Operation &loop = b.create("test.loop", {}, {f64});
  loop.append_operand(loop.result(0));
  // erase drops the subtree's operands first, so the self-use does not
  // violate the results-must-be-unused precondition.
  module.body().erase(&loop);
  EXPECT_TRUE(loop.erased());
  EXPECT_FALSE(loop.result(0)->has_uses());
}

TEST(UseLists, OperandGrowthPreservesUses) {
  // append_operand past the inline capacity spills the Use array to a fresh
  // arena array and relinks every node; nothing may be lost or reordered.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  ei::Operation &op = b.create("test.variadic", {x}, {});
  for (int i = 1; i < 21; ++i) op.append_operand(i % 2 == 0 ? x : y);

  ASSERT_EQ(op.num_operands(), 21u);
  for (std::size_t i = 0; i < op.num_operands(); ++i) {
    EXPECT_EQ(op.operand(i), i % 2 == 0 ? x : y) << i;
    EXPECT_EQ(op.operand_use(i).user(), &op);
    EXPECT_EQ(op.operand_use(i).operand_index(), i);
  }
  EXPECT_EQ(x->use_count(), 11u);
  EXPECT_EQ(y->use_count(), 10u);
  EXPECT_EQ(list_uses(x), scan_uses(module, x));
  EXPECT_EQ(list_uses(y), scan_uses(module, y));
}

TEST(UseLists, RandomizedInvariant) {
  // N random mutation sequences over a flat module: create ops with random
  // operands (duplicates and self-references included), retarget and append
  // operands, replace result uses, erase dead ops. After every sequence the
  // recomputed users of every live value must equal the intrusive list.
  ei::Type f64 = ei::Type::floating(64);
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    std::mt19937 rng(seed * 7919u);
    ei::Module module;
    ei::OpBuilder b(&module.body());
    std::vector<ei::Value *> pool;
    std::vector<ei::Operation *> ops;
    for (int i = 0; i < 4; ++i) pool.push_back(b.constant_f64(i));

    auto random_value = [&]() {
      return pool[rng() % pool.size()];
    };

    for (int step = 0; step < 300; ++step) {
      switch (rng() % 6) {
        case 0:
        case 1: {  // create an op with random operands / results
          std::vector<ei::Value *> operands;
          for (std::size_t i = 0, n = rng() % 5; i < n; ++i)
            operands.push_back(random_value());
          std::vector<ei::Type> results(rng() % 3, f64);
          ei::Operation &op = b.create("test.node", operands, results);
          ops.push_back(&op);
          for (std::size_t r = 0; r < op.num_results(); ++r)
            pool.push_back(op.result(r));
          break;
        }
        case 2: {  // retarget a random operand slot
          if (ops.empty()) break;
          ei::Operation *op = ops[rng() % ops.size()];
          if (op->num_operands() == 0) break;
          op->set_operand(rng() % op->num_operands(), random_value());
          break;
        }
        case 3: {  // append an operand (occasionally a self-result)
          if (ops.empty()) break;
          ei::Operation *op = ops[rng() % ops.size()];
          ei::Value *v = op->num_results() != 0 && rng() % 4 == 0
                             ? op->result(rng() % op->num_results())
                             : random_value();
          op->append_operand(v);
          break;
        }
        case 4: {  // replace all result uses with random pool values
          if (ops.empty()) break;
          ei::Operation *op = ops[rng() % ops.size()];
          std::vector<ei::Value *> replacements;
          for (std::size_t r = 0; r < op->num_results(); ++r)
            replacements.push_back(random_value());
          op->replace_all_uses_with(replacements);
          break;
        }
        case 5: {  // erase an op whose results are all unused
          if (ops.empty()) break;
          std::size_t at = rng() % ops.size();
          ei::Operation *op = ops[at];
          bool dead = true;
          for (std::size_t r = 0; r < op->num_results(); ++r) {
            // A self-use alone does not keep an op alive: erase drops the
            // subtree's operands before checking dangles.
            for (const ei::Use &use : op->result(r)->uses()) {
              if (use.user() != op) dead = false;
            }
          }
          if (!dead) break;
          module.body().erase(op);
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(at));
          for (std::size_t r = 0; r < op->num_results(); ++r) {
            auto it = std::find(pool.begin(), pool.end(), op->result(r));
            if (it != pool.end()) pool.erase(it);
          }
          break;
        }
      }
    }

    for (ei::Value *v : pool) {
      EXPECT_EQ(list_uses(v), scan_uses(module, v)) << "seed " << seed;
    }
    for (ei::Operation *op : ops) {
      for (std::size_t i = 0; i < op->num_operands(); ++i) {
        EXPECT_EQ(op->operand_use(i).user(), op);
        EXPECT_EQ(op->operand_use(i).operand_index(), i);
      }
    }
  }
}

// ----------------------------------------------------------------- Verifier

class VerifierTest : public ::testing::Test {
protected:
  void SetUp() override { ed::register_everest_dialects(ctx_); }
  ei::Context ctx_;
};

TEST_F(VerifierTest, AcceptsWellFormed) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  b.create("arith.addf", {x, x}, {ei::Type::floating(64)});
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, RejectsUnknownOpInKnownDialect) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.create("arith.frobnicate", {}, {});
  EXPECT_FALSE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, RejectsArityMismatch) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  b.create("arith.addf", {x}, {ei::Type::floating(64)});  // needs 2 operands
  auto s = ctx_.verify(module);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("operands"), std::string::npos);
}

TEST_F(VerifierTest, RejectsMissingRequiredAttr) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.create("arith.constant", {}, {ei::Type::floating(64)});  // missing value
  EXPECT_FALSE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, RunsSemanticVerifier) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *i = b.constant_index(1);
  b.create("arith.addf", {x, i}, {ei::Type::floating(64)});
  auto s = ctx_.verify(module);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("types must match"), std::string::npos);
}

TEST_F(VerifierTest, EklSumChecksReducedIndices) {
  ei::Module module;
  ei::Operation &kernel = ed::ekl::make_kernel(module.body(), "k");
  ei::OpBuilder b(&kernel.region(0).front());
  ei::Value *in = ed::ekl::make_input(b, "a", {"x", "y"});
  ed::ekl::make_sum(b, in, {"y"});
  EXPECT_TRUE(ctx_.verify(module).is_ok());

  // Reducing an index the operand does not carry must fail.
  ei::Value *bad = ed::ekl::make_sum(b, in, {"x"});
  bad->defining_op()->set_attr("reduce", ei::Attribute::string_array({"zz"}));
  EXPECT_FALSE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, AllDialectsRegistered) {
  for (const char *name :
       {"arith", "func", "scf", "tensor", "memref", "ekl", "cfdlang", "teil",
        "esn", "dfg", "base2", "bit", "evp", "olympus"}) {
    EXPECT_NE(ctx_.find_dialect(name), nullptr) << name;
  }
}

TEST_F(VerifierTest, OlympusBusLaneDivisibility) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.create("olympus.bus", {}, {ei::Type::custom("olympus", "bus")},
           {{"width_bits", ei::Attribute(std::int64_t{512})},
            {"lanes", ei::Attribute(std::int64_t{3})}});
  EXPECT_FALSE(ctx_.verify(module).is_ok());
}

// ----------------------------------------------------- Print / parse round trip

TEST_F(VerifierTest, PrintParseRoundTrip) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.5);
  ei::Value *y = b.constant_f64(2.0);
  ei::Value *sum = b.create_value("arith.addf", {x, y}, ei::Type::floating(64));
  ei::Operation &region_op = b.create("scf.execute_region", {sum},
                                      {ei::Type::floating(64)}, {}, 1);
  ei::Block &inner = region_op.region(0).add_block();
  inner.add_argument(ei::Type::index());
  ei::OpBuilder ib(&inner);
  ib.create("scf.yield", {sum}, {});

  std::string printed = module.str();
  auto reparsed = ei::parse_module(printed);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message << "\n"
                                    << printed;
  EXPECT_EQ((*reparsed)->str(), printed);
  EXPECT_TRUE(ctx_.verify(**reparsed).is_ok());
}

TEST_F(VerifierTest, ParseRejectsUndefinedValue) {
  auto r = ei::parse_module(
      "module {\n  \"arith.negf\"(%99) : (f64) -> f64\n}\n");
  EXPECT_FALSE(r.has_value());
}

TEST_F(VerifierTest, ParseAttributesAndTypes) {
  std::string text =
      "module {\n"
      "  %0 = \"arith.constant\"() {value = 2.5} : () -> f64\n"
      "  %1 = \"base2.quantize\"(%0) {format = \"fixed<16,8>\"} : (f64) -> "
      "!base2.fixed<16,8>\n"
      "}\n";
  auto m = ei::parse_module(text);
  ASSERT_TRUE(m.has_value()) << m.error().message;
  auto *q = (*m)->find_first("base2.quantize");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->attr_string("format"), "fixed<16,8>");
  EXPECT_EQ(q->result(0)->type().str(), "!base2.fixed<16,8>");
}

// --------------------------------------------------------------------- Pass

TEST_F(VerifierTest, PassManagerRunsAndTimes) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.constant_f64(1.0);

  ei::PassManager pm(ctx_);
  pm.add_pass("count-check", [](ei::Module &m, ei::Context &) {
    return m.op_count() == 1
               ? everest::support::Status::ok()
               : everest::support::Status::failure("unexpected op count");
  });
  pm.add_pass("add-one", [](ei::Module &m, ei::Context &) {
    ei::OpBuilder bb(&m.body());
    bb.constant_f64(2.0);
    return everest::support::Status::ok();
  });
  ASSERT_TRUE(pm.run(module).is_ok());
  ASSERT_EQ(pm.timings().size(), 2u);
  EXPECT_EQ(pm.timings()[1].ops_before, 1u);
  EXPECT_EQ(pm.timings()[1].ops_after, 2u);
}

TEST_F(VerifierTest, PassManagerStopsOnVerifierFailure) {
  ei::Module module;
  ei::PassManager pm(ctx_);
  pm.add_pass("break-ir", [](ei::Module &m, ei::Context &) {
    ei::OpBuilder bb(&m.body());
    bb.create("arith.constant", {}, {ei::Type::floating(64)});  // no value
    return everest::support::Status::ok();
  });
  auto s = pm.run(module);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("break-ir"), std::string::npos);
}

// ------------------------------------------------------------------ Rewrite

TEST_F(VerifierTest, GreedyConstantFolding) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *x = b.constant_f64(1.0);
  ei::Value *y = b.constant_f64(2.0);
  ei::Value *s1 = b.create_value("arith.addf", {x, y}, ei::Type::floating(64));
  ei::Value *z = b.constant_f64(4.0);
  b.create("arith.mulf", {s1, z}, {ei::Type::floating(64)});

  auto fold = std::make_shared<ei::LambdaPattern>(
      "", [](ei::Operation &op, ei::PatternRewriter &rw) {
        if (op.name() != "arith.addf" && op.name() != "arith.mulf") return false;
        auto *l = op.operand(0)->defining_op();
        auto *r = op.operand(1)->defining_op();
        if (!l || !r || l->name() != "arith.constant" ||
            r->name() != "arith.constant")
          return false;
        double lv = l->attr_double("value");
        double rv = r->attr_double("value");
        double res = op.name() == "arith.addf" ? lv + rv : lv * rv;
        ei::OpBuilder b2(op.parent_block());
        b2.set_insertion_point(&op);
        ei::Value *c = b2.constant_f64(res);
        rw.replace_op(&op, {c});
        return true;
      });

  auto stats = ei::apply_patterns_greedily(module, {fold});
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rewrites, 2u);

  // Dead constants remain; the final value should be 12.
  bool found = false;
  module.walk([&](ei::Operation &op) {
    if (op.name() == "arith.constant" && op.attr_double("value") == 12.0)
      found = true;
  });
  EXPECT_TRUE(found);
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, RewriteDriverBoundedIterations) {
  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.constant_f64(0.0);
  // A pattern that always fires (bumps a counter attr) never converges.
  auto bump = std::make_shared<ei::LambdaPattern>(
      "arith.constant", [](ei::Operation &op, ei::PatternRewriter &) {
        op.set_attr("value", ei::Attribute(op.attr_double("value") + 1.0));
        return true;
      });
  auto stats = ei::apply_patterns_greedily(module, {bump}, 5);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 5u);
}

// ---------------------------------------------------------------- EKL helpers

TEST_F(VerifierTest, EklBuilderIndices) {
  ei::Module module;
  ei::Operation &kernel = ed::ekl::make_kernel(module.body(), "tau");
  ei::OpBuilder b(&kernel.region(0).front());
  ei::Value *p = ed::ekl::make_input(b, "p", {"x"});
  ei::Value *k = ed::ekl::make_input(b, "k", {"t", "p_ax", "g"});
  ei::Value *prod = ed::ekl::make_binary(b, "mul", p, k);
  EXPECT_EQ(ed::ekl::result_indices(*prod),
            (std::vector<std::string>{"x", "t", "p_ax", "g"}));
  ei::Value *sum = ed::ekl::make_sum(b, prod, {"t"});
  EXPECT_EQ(ed::ekl::result_indices(*sum),
            (std::vector<std::string>{"x", "p_ax", "g"}));
  ed::ekl::make_output(b, "out", sum);
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

TEST_F(VerifierTest, EklStackAddsNewIndex) {
  ei::Module module;
  ei::Operation &kernel = ed::ekl::make_kernel(module.body(), "k");
  ei::OpBuilder b(&kernel.region(0).front());
  ei::Value *j = ed::ekl::make_input(b, "j", {"x"});
  ei::Value *one = ed::ekl::make_literal(b, 1.0);
  ei::Value *j1 = ed::ekl::make_binary(b, "add", j, one);
  ei::Value *stacked = ed::ekl::make_stack(b, {j, j1}, "t");
  EXPECT_EQ(ed::ekl::result_indices(*stacked),
            (std::vector<std::string>{"x", "t"}));
  EXPECT_TRUE(ctx_.verify(module).is_ok());
}

// ---------------------------------------------------------------------
// Print -> parse -> print fixpoint, property-tested over every op of every
// registered dialect with randomized operands/results/attributes/regions,
// plus verifier rejection of malformed ops.

#include "support/rng.hpp"

namespace {

ei::Type random_type(everest::support::Pcg32 &rng) {
  switch (rng.next() % 5) {
    case 0: return ei::Type::floating(64);
    case 1: return ei::Type::integer(32);
    case 2: return ei::Type::index();
    case 3: return ei::Type::tensor({2, 4}, ei::Type::floating(32));
    default: return ei::Type::custom("base2", "fixed", {"16", "8"});
  }
}

ei::Attribute random_attr(everest::support::Pcg32 &rng, int depth = 1) {
  switch (rng.next() % (depth > 0 ? 7u : 6u)) {
    case 0: return {};  // unit
    case 1: return {rng.next() % 2 == 0};
    case 2: return {static_cast<std::int64_t>(rng.next() % 100)};
    case 3: return {static_cast<double>(rng.next() % 8) + 0.5};
    case 4: return {"s" + std::to_string(rng.next() % 10)};
    case 5: return {random_type(rng)};
    default: {
      std::vector<ei::Attribute> items;
      for (std::uint32_t i = rng.next() % 3 + 1; i-- > 0;)
        items.push_back(random_attr(rng, depth - 1));
      return {std::move(items)};
    }
  }
}

}  // namespace

TEST(PrintParseFixpoint, EveryRegisteredOpRoundTrips) {
  ei::Context ctx;
  ed::register_everest_dialects(ctx);
  everest::support::Pcg32 rng(424242);
  int covered = 0;

  for (const auto &dialect_name : ctx.dialect_names()) {
    const auto *dialect = ctx.find_dialect(dialect_name);
    ASSERT_NE(dialect, nullptr);
    for (const auto &[mnemonic, def] : dialect->ops()) {
      const std::string op_name = dialect_name + "." + mnemonic;
      // Three random instantiations per op.
      for (int variant = 0; variant < 3; ++variant) {
        ei::Module module;
        ei::Block &body = module.body();
        std::vector<ei::Value *> pool;
        for (int i = 0; i < 4; ++i) {
          auto &src = body.attach(ei::Operation::create(
              module.arena(), ei::Symbol("fixture.src"), {},
              {random_type(rng)}));
          pool.push_back(src.result(0));
        }

        auto pick = [&](int exact, std::uint32_t cap) {
          return exact < 0 ? static_cast<int>(rng.next() % cap) : exact;
        };
        int nops = pick(def.num_operands, 4);
        int nres = pick(def.num_results, 3);
        int nreg = pick(def.num_regions, 2);

        std::vector<ei::Value *> operands;
        for (int i = 0; i < nops; ++i)
          operands.push_back(pool[rng.next() % pool.size()]);
        std::vector<ei::Type> results;
        for (int i = 0; i < nres; ++i) results.push_back(random_type(rng));
        ei::AttrDict attrs;
        for (const auto &key : def.required_attrs)
          attrs.set(key, random_attr(rng));
        if (rng.next() % 2 == 0) attrs.set("extra", random_attr(rng));

        ei::Operation *op = ei::Operation::create(
            module.arena(), ei::Symbol(op_name), operands, results, attrs,
            static_cast<std::size_t>(nreg));
        for (int r = 0; r < nreg; ++r) {
          ei::Block &inner = op->region(static_cast<std::size_t>(r)).add_block();
          if (rng.next() % 2 == 0) inner.add_argument(random_type(rng));
          inner.attach(ei::Operation::create(module.arena(),
                                             ei::Symbol("fixture.inner"), {},
                                             {}));
        }
        body.attach(op);

        const std::string text1 = module.str();
        auto parsed = ei::parse_module(text1);
        ASSERT_TRUE(parsed.has_value())
            << op_name << ": " << parsed.error().message << "\n" << text1;
        const std::string text2 = (*parsed)->str();
        EXPECT_EQ(text1, text2) << op_name;

        // Idempotent from the first reprint on: a true fixpoint.
        auto reparsed = ei::parse_module(text2);
        ASSERT_TRUE(reparsed.has_value()) << op_name;
        EXPECT_EQ((*reparsed)->str(), text2) << op_name;
      }
      ++covered;
    }
  }
  // The dialect stack of Fig. 5 — make sure the walk really saw it.
  EXPECT_GT(covered, 30);
}

TEST(Verifier, RejectsMalformedOps) {
  ei::Context ctx;
  ed::register_everest_dialects(ctx);
  int missing_region = 0, extra_region = 0, missing_attr = 0, bad_arity = 0;

  for (const auto &dialect_name : ctx.dialect_names()) {
    const auto *dialect = ctx.find_dialect(dialect_name);
    for (const auto &[mnemonic, def] : dialect->ops()) {
      const std::string op_name = dialect_name + "." + mnemonic;

      // An op that requires regions, built with none.
      if (def.num_regions > 0 && def.num_operands <= 0 && missing_region < 3) {
        ei::Module m;
        m.body().attach(ei::Operation::create(m.arena(), ei::Symbol(op_name),
                                              {}, {}, {}, 0));
        EXPECT_FALSE(ctx.verify(m).is_ok()) << op_name;
        ++missing_region;
      }
      // An op that allows no regions, built with a spurious (empty) one.
      if (def.num_regions == 0 && def.num_operands <= 0 &&
          def.required_attrs.empty() && extra_region < 3) {
        ei::Module m;
        ei::Operation *op = ei::Operation::create(
            m.arena(), ei::Symbol(op_name), {}, {}, {}, 1);
        op->region(0).add_block();
        m.body().attach(op);
        EXPECT_FALSE(ctx.verify(m).is_ok()) << op_name;
        ++extra_region;
      }
      // Required attributes left out.
      if (!def.required_attrs.empty() && def.num_operands <= 0 &&
          missing_attr < 3) {
        ei::Module m;
        ei::Operation *op = ei::Operation::create(
            m.arena(), ei::Symbol(op_name), {}, {}, {},
            static_cast<std::size_t>(std::max(def.num_regions, 0)));
        for (std::size_t r = 0; r < op->num_regions(); ++r)
          op->region(r).add_block();
        m.body().attach(op);
        EXPECT_FALSE(ctx.verify(m).is_ok()) << op_name;
        ++missing_attr;
      }
      // Fixed operand arity violated.
      if (def.num_operands > 0 && bad_arity < 3) {
        ei::Module m;
        m.body().attach(ei::Operation::create(m.arena(), ei::Symbol(op_name),
                                              {}, {}, {}, 0));
        EXPECT_FALSE(ctx.verify(m).is_ok()) << op_name;
        ++bad_arity;
      }
    }
  }
  EXPECT_GT(missing_region, 0);
  EXPECT_GT(missing_attr, 0);
  EXPECT_GT(bad_arity, 0);
}
