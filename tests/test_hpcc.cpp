// Tests for the HPCC-FPGA workload suite (src/hpcc): randomized
// differential validation of every kernel against scalar host references,
// golden print->parse->print IR fixtures, the compile-cache behavior of the
// GEMM tile-size knob, the BENCH_hpcc.json schema self-check, and the
// partial-subscript gather regression the b_eff kernel depends on.

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "hpcc/workloads.hpp"
#include "ir/parser.hpp"
#include "sdk/options.hpp"
#include "support/rng.hpp"
#include "transforms/ekl_eval.hpp"

namespace eh = everest::hpcc;
namespace er = everest::runtime;
namespace esup = everest::support;
using everest::numerics::Tensor;

namespace {

eh::HpccConfig small_config(std::int64_t n, std::uint64_t seed = 42) {
  eh::HpccConfig config;
  config.n = n;
  config.seed = seed;
  config.replications = 1;
  return config;
}

std::string read_file(const std::string &path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Runs one workload at several seeded random sizes; every run must
/// self-validate (error < epsilon) and land its roofline ratio in (0, 1].
void differential(eh::HpccBenchmark &benchmark, std::uint64_t seed) {
  esup::Pcg32 rng(seed);
  for (int round = 0; round < 3; ++round) {
    auto n = static_cast<std::int64_t>(8.0 + rng.uniform(0.0, 24.0));
    eh::HpccHarness harness(small_config(n, seed + round));
    auto result = benchmark.run(harness);
    ASSERT_TRUE(result.has_value())
        << benchmark.name() << " n=" << n << ": " << result.error().message;
    EXPECT_TRUE(result->validated) << benchmark.name() << " n=" << n;
    EXPECT_LT(result->error, result->epsilon) << benchmark.name() << " n=" << n;
    EXPECT_GT(result->ratio, 0.0) << benchmark.name() << " n=" << n;
    EXPECT_LE(result->ratio, 1.0) << benchmark.name() << " n=" << n;
    EXPECT_GT(result->device_us, 0.0) << benchmark.name() << " n=" << n;
  }
}

}  // namespace

// ------------------------------------------------- differential per kernel

TEST(HpccDifferential, Stream) {
  eh::StreamBenchmark b;
  differential(b, 101);
}

TEST(HpccDifferential, Gemm) {
  eh::GemmBenchmark b;
  differential(b, 102);
}

TEST(HpccDifferential, Ptrans) {
  eh::PtransBenchmark b;
  differential(b, 103);
}

TEST(HpccDifferential, Fft) {
  eh::FftBenchmark b;
  differential(b, 104);
}

TEST(HpccDifferential, RandomAccess) {
  eh::RandomAccessBenchmark b;
  differential(b, 105);
}

TEST(HpccDifferential, Linpack) {
  eh::LinpackBenchmark b;
  differential(b, 106);
}

TEST(HpccDifferential, Beff) {
  eh::BeffBenchmark b;
  differential(b, 107);
}

// --------------------------------------------------------- fold execution

TEST(HpccRandomAccess, FoldMatchesHostLoopForAnyWorkerCount) {
  eh::HpccHarness harness(small_config(16));
  auto source = harness.read_kernel("randomaccess.rs");
  ASSERT_TRUE(source.has_value()) << source.error().message;

  er::Record table{1.0, 2.0, 3.0, 4.0};
  const std::vector<std::pair<double, double>> updates = {
      {2, 0.5}, {0, -1.0}, {2, 0.25}, {3, 2.0}, {1, 0.125}, {99, 7.0}};
  er::Stream stream;
  for (auto [slot, add] : updates) stream.push_back({slot, add});

  er::Record expected = table;
  for (auto [slot, add] : updates) {
    auto i = std::min<std::size_t>(expected.size() - 1,
                                   static_cast<std::size_t>(slot));
    expected[i] += add;
  }

  for (int workers : {1, 4}) {
    auto graph = eh::make_randomaccess_graph(*source, table);
    ASSERT_TRUE(graph.has_value()) << graph.error().message;
    auto outputs = er::execute_dfg(*graph->graph, *graph->registry,
                                   {{"updates", stream}}, workers);
    ASSERT_TRUE(outputs.has_value()) << outputs.error().message;
    ASSERT_EQ(outputs->at("table").size(), 1u);
    EXPECT_EQ(outputs->at("table").front(), expected)
        << "workers=" << workers;
  }
}

// ----------------------------------------------------------- compile cache

TEST(HpccCache, GemmTileSizeChangeMissesContentTierIdenticalRecompileHits) {
  eh::HpccHarness harness(small_config(8));
  esup::Pcg32 rng(7);
  everest::transforms::EklBindings bind;
  auto fill = [&](std::int64_t rows, std::int64_t cols) {
    Tensor t({rows, cols});
    for (double &v : t.data()) v = rng.uniform(-1.0, 1.0);
    return t;
  };
  bind.inputs.emplace("a", fill(8, 8));
  bind.inputs.emplace("b", fill(8, 8));
  bind.inputs.emplace("c0", fill(8, 8));

  auto first = harness.compile_kernel("gemm.ekl", bind);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  auto hits_after_first = harness.cache().hits();
  auto misses_after_first = harness.cache().misses();
  EXPECT_GT(misses_after_first, 0) << "cold compile must miss";

  // Identical recompile: same source, bindings, and options — must hit.
  auto second = harness.compile_kernel("gemm.ekl", bind);
  ASSERT_TRUE(second.has_value()) << second.error().message;
  EXPECT_GT(harness.cache().hits(), hits_after_first);
  EXPECT_EQ(harness.cache().misses(), misses_after_first);
  EXPECT_EQ(second->loop_ir->str(), first->loop_ir->str())
      << "cache hit must reproduce the compiled IR byte-for-byte";

  // The PLM tile size is part of the options fingerprint: changing it must
  // bypass both the direct tier and the content tier.
  auto retiled_options = harness.base_options();
  retiled_options.olympus.plm_tile_bytes = harness.config().tile_bytes / 2;
  ASSERT_NE(eh::HpccConfig{}.tile_bytes, retiled_options.olympus.plm_tile_bytes);
  auto hits_before_retile = harness.cache().hits();
  auto retiled = harness.compile_kernel("gemm.ekl", bind, retiled_options);
  ASSERT_TRUE(retiled.has_value()) << retiled.error().message;
  EXPECT_GT(harness.cache().misses(), misses_after_first)
      << "tile-size change must miss the content tier";
  EXPECT_EQ(harness.cache().hits(), hits_before_retile);
}

// -------------------------------------------------------- gather regression

TEST(HpccGather, PartialSubscriptKeepsTrailingDims) {
  // m[r] subscripts only the leading dim of the 2-d tensor m; the trailing
  // dim must keep its declared index name i, so sum(i) m[r] is a row sum.
  // (A dropped trailing dim collapses the type and loses the i axis.)
  auto module = everest::frontend::parse_ekl(R"(
kernel rowsum
index r, i
input m[r, i]
s = sum(i) m[r]
output s
)");
  ASSERT_TRUE(module.has_value()) << module.error().message;
  everest::transforms::EklBindings bind;
  Tensor m({2, 3});
  for (std::int64_t r = 0; r < 2; ++r)
    for (std::int64_t i = 0; i < 3; ++i)
      m(r, i) = static_cast<double>(10 * r + i + 1);
  bind.inputs.emplace("m", std::move(m));
  auto outputs = everest::transforms::evaluate_ekl(**module, bind);
  ASSERT_TRUE(outputs.has_value()) << outputs.error().message;
  const Tensor &s = outputs->at("s");
  ASSERT_EQ(s.shape(), (everest::numerics::Shape{2}));
  EXPECT_DOUBLE_EQ(s(0), 1.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(s(1), 11.0 + 12.0 + 13.0);
}

// ---------------------------------------------------------- golden fixtures

TEST(HpccFixtures, GoldenPrintParsePrintIsByteStable) {
  eh::HpccHarness harness(small_config(8));
  const std::string dir = harness.config().data_dir + "/";
  struct Entry {
    const char *source;
    const char *golden;
    int kind;  // 0 = ekl, 1 = cfdlang, 2 = condrust
  };
  const Entry entries[] = {
      {"stream.ekl", "stream.ir", 0},
      {"gemm.ekl", "gemm.ir", 0},
      {"ptrans.ekl", "ptrans.ir", 0},
      {"fft.ekl", "fft.ir", 0},
      {"randomaccess.ekl", "randomaccess.ir", 0},
      {"linpack.ekl", "linpack.ir", 0},
      {"beff.ekl", "beff.ir", 0},
      {"ptrans.cfd", "ptrans_cfd.ir", 1},
      {"randomaccess.rs", "randomaccess_rs.ir", 2},
  };
  for (const Entry &e : entries) {
    SCOPED_TRACE(e.source);
    std::string source = read_file(dir + e.source);
    std::string golden = read_file(dir + e.golden);
    std::shared_ptr<everest::ir::Module> module;
    if (e.kind == 0) {
      auto parsed = everest::frontend::parse_ekl(source);
      ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
      module = *parsed;
    } else if (e.kind == 1) {
      auto parsed = everest::frontend::parse_cfdlang(source);
      ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
      module = *parsed;
    } else {
      auto parsed = everest::frontend::parse_condrust(source);
      ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
      module = *parsed;
    }
    EXPECT_EQ(module->str(), golden)
        << "frontend print diverged from the golden fixture";
    // Round-trip: the printed text must re-parse and print byte-identically.
    auto reparsed = everest::ir::parse_module(golden);
    ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
    EXPECT_EQ((*reparsed)->str(), golden)
        << "IR print -> parse -> print is not a fixpoint";
  }
}

// ------------------------------------------------------------- json schema

TEST(HpccJson, SuiteDocumentPassesSchemaAndCorruptionsFail) {
  eh::HpccConfig config = small_config(8);
  eh::HpccHarness harness(config);
  auto results = eh::run_suite(harness);
  ASSERT_TRUE(results.has_value()) << results.error().message;
  auto device = everest::sdk::resolve_target(config.target);
  ASSERT_TRUE(device.has_value());

  auto doc = eh::suite_json(config, *device, *results);
  EXPECT_TRUE(eh::check_suite_json(doc).is_ok());

  {
    auto bad = *results;
    bad[0].validated = false;
    EXPECT_FALSE(
        eh::check_suite_json(eh::suite_json(config, *device, bad)).is_ok())
        << "validated=false must fail the schema check";
  }
  {
    auto bad = *results;
    bad[1].ratio = 1.5;
    EXPECT_FALSE(
        eh::check_suite_json(eh::suite_json(config, *device, bad)).is_ok())
        << "ratio above 1 must fail the sanity bound";
  }
  {
    auto bad = *results;
    bad[2].error = bad[2].epsilon;
    EXPECT_FALSE(
        eh::check_suite_json(eh::suite_json(config, *device, bad)).is_ok())
        << "error == epsilon violates the strict error < epsilon contract";
  }
  {
    auto bad = *results;
    bad.pop_back();
    EXPECT_FALSE(
        eh::check_suite_json(eh::suite_json(config, *device, bad)).is_ok())
        << "a missing workload must fail the completeness check";
  }
  {
    auto bad = *results;
    bad.push_back(bad.front());
    EXPECT_FALSE(
        eh::check_suite_json(eh::suite_json(config, *device, bad)).is_ok())
        << "a duplicated workload must fail the completeness check";
  }
  EXPECT_FALSE(eh::check_suite_json(esup::Json::object()).is_ok());

  // The emitted document round-trips through text.
  auto reparsed = esup::Json::parse(doc.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(eh::check_suite_json(*reparsed).is_ok());
}

// -------------------------------------------------------------------- args

TEST(HpccArgs, ParsesFlagsAndRejectsBadInput) {
  const char *argv[] = {"bench_hpcc",       "--n=128",       "--replications=3",
                        "--target=cloudfpga", "--seed=7",    "--tile-bytes=65536",
                        "--world=6",        "--out=custom.json"};
  auto config = eh::parse_hpcc_args(8, argv);
  ASSERT_TRUE(config.has_value()) << config.error().message;
  EXPECT_EQ(config->n, 128);
  EXPECT_EQ(config->replications, 3);
  EXPECT_EQ(config->target, "cloudfpga");
  EXPECT_EQ(config->seed, 7u);
  EXPECT_EQ(config->tile_bytes, 65536);
  EXPECT_EQ(config->beff_world, 6);
  EXPECT_EQ(config->out, "custom.json");

  const char *unknown[] = {"bench_hpcc", "--bogus=1"};
  EXPECT_FALSE(eh::parse_hpcc_args(2, unknown).has_value());
  const char *tiny[] = {"bench_hpcc", "--n=2"};
  EXPECT_FALSE(eh::parse_hpcc_args(2, tiny).has_value());
  const char *text[] = {"bench_hpcc", "--n=abc"};
  EXPECT_FALSE(eh::parse_hpcc_args(2, text).has_value());
}
