// Tests for the HLS engine, device models, memory contention, the XRT-like
// host API, ZRLMPI networking, and Olympus system generation.

#include <gtest/gtest.h>

#include "dialects/registry.hpp"
#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "olympus/olympus.hpp"
#include "platform/memory.hpp"
#include "platform/network.hpp"
#include "platform/xrt.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"

namespace eh = everest::hls;
namespace ep = everest::platform;
namespace eo = everest::olympus;
namespace et = everest::transforms;
namespace ef = everest::frontend;
namespace rr = everest::usecases::rrtmg;

namespace {

/// Compiles an EKL dot-product into loop IR for scheduling tests.
std::shared_ptr<everest::ir::Module> dot_loops(std::int64_t n) {
  auto m = ef::parse_ekl(R"(
kernel dot
index i
input a[i]
input b[i]
d = sum(i) a[i] * b[i]
output d
)");
  EXPECT_TRUE(m.has_value());
  et::EklBindings bind;
  bind.inputs.emplace("a", everest::numerics::Tensor(
                               everest::numerics::Shape{n}));
  bind.inputs.emplace("b", everest::numerics::Tensor(
                               everest::numerics::Shape{n}));
  auto teil = et::lower_ekl_to_teil(**m, bind);
  EXPECT_TRUE(teil.has_value());
  auto loops = et::lower_teil_to_loops(**teil);
  EXPECT_TRUE(loops.has_value());
  return *loops;
}

}  // namespace

// ----------------------------------------------------------------- HLS core

TEST(HlsResources, WidthScaling) {
  auto mul64 = eh::op_spec("arith.mulf", 64);
  auto mul16 = eh::op_spec("arith.mulf", 16);
  EXPECT_GT(mul64.area.dsps, mul16.area.dsps);
  EXPECT_GE(mul64.latency, mul16.latency);
  auto add64 = eh::op_spec("arith.addf", 64);
  EXPECT_GT(add64.latency, 1);
}

TEST(HlsResources, BramSizing) {
  EXPECT_EQ(eh::brams_for_bytes(1), 1);
  EXPECT_EQ(eh::brams_for_bytes(4608), 1);
  EXPECT_EQ(eh::brams_for_bytes(4609), 2);
}

TEST(HlsScheduler, DotProductReport) {
  auto loops = dot_loops(1024);
  auto report = eh::schedule_kernel(*loops);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_EQ(report->name, "dot");
  ASSERT_GE(report->stages.size(), 3u);  // mul nest, init nest, reduce nest
  EXPECT_EQ(report->input_bytes, 2 * 1024 * 8);
  EXPECT_EQ(report->output_bytes, 8);
  EXPECT_GT(report->total_cycles, 1024);
  EXPECT_GT(report->area.luts, 0);
  EXPECT_GT(report->area.brams, 0);

  // The reduction stage carries a loop dependence: II > 1 through the
  // accumulator, and the report flags the recurrence.
  bool recurrence_found = false;
  for (const auto &s : report->stages) {
    if (s.has_recurrence) {
      recurrence_found = true;
      EXPECT_GT(s.ii, 1);
    }
  }
  EXPECT_TRUE(recurrence_found);
}

TEST(HlsScheduler, PipeliningReducesLatency) {
  auto loops = dot_loops(4096);
  eh::HlsOptions pipelined;
  eh::HlsOptions sequential;
  sequential.enable_pipelining = false;
  auto fast = eh::schedule_kernel(*loops, pipelined);
  auto slow = eh::schedule_kernel(*loops, sequential);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  EXPECT_LT(fast->total_cycles, slow->total_cycles);
}

TEST(HlsScheduler, NarrowDatapathShrinksArea) {
  auto loops = dot_loops(1024);
  eh::HlsOptions wide;
  eh::HlsOptions narrow;
  narrow.datapath_bits = 16;
  auto w = eh::schedule_kernel(*loops, wide);
  auto n = eh::schedule_kernel(*loops, narrow);
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(n.has_value());
  EXPECT_LT(n->area.luts, w->area.luts);
  EXPECT_LT(n->area.dsps, w->area.dsps);
  EXPECT_LE(n->total_cycles, w->total_cycles);
}

TEST(HlsScheduler, RenderReportContainsSections) {
  auto loops = dot_loops(64);
  auto report = eh::schedule_kernel(*loops);
  ASSERT_TRUE(report.has_value());
  std::string text = eh::render_report(*report);
  EXPECT_NE(text.find("synthesis report"), std::string::npos);
  EXPECT_NE(text.find("II"), std::string::npos);
  EXPECT_NE(text.find("area:"), std::string::npos);
}

TEST(HlsScheduler, Fig3KernelSchedules) {
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto m = ef::parse_ekl(rr::ekl_source());
  ASSERT_TRUE(m.has_value());
  auto teil = et::lower_ekl_to_teil(**m, rr::bindings(data));
  ASSERT_TRUE(teil.has_value());
  auto loops = et::lower_teil_to_loops(**teil);
  ASSERT_TRUE(loops.has_value());
  auto report = eh::schedule_kernel(**loops);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_GT(report->stages.size(), 10u);
  EXPECT_GT(report->dataflow_cycles, 0);
  EXPECT_LE(report->dataflow_cycles, report->total_cycles);
}

// ------------------------------------------------------------------ devices

TEST(Devices, PresetsSane) {
  auto u55c = ep::alveo_u55c();
  EXPECT_EQ(u55c.memory.hbm_channels, 32);
  EXPECT_NEAR(u55c.memory.hbm_gbps_per_channel * 32, 460.0, 1.0);
  auto cf = ep::cloudfpga();
  EXPECT_EQ(cf.link.kind, ep::LinkSpec::Kind::Network);
  EXPECT_LT(cf.capacity.luts, u55c.capacity.luts);
}

TEST(Devices, FitsAndUtilization) {
  auto u55c = ep::alveo_u55c();
  eh::Resources small{1000, 1000, 10, 10};
  EXPECT_TRUE(ep::fits(small, u55c.capacity));
  eh::Resources huge{10'000'000, 0, 0, 0};
  EXPECT_FALSE(ep::fits(huge, u55c.capacity));
  EXPECT_GT(ep::utilization(huge, u55c.capacity), 1.0);
}

// ------------------------------------------------------------------- memory

TEST(MemoryModel, SingleStreamHitsChannelBandwidth) {
  auto mem = ep::alveo_u55c().memory;
  ep::MemoryStream s;
  s.bytes = 1'000'000'000;  // 1 GB on one channel
  s.channels = {0};
  double t = ep::contention_time_seconds({s}, mem);
  EXPECT_NEAR(1.0 / t, mem.hbm_gbps_per_channel, 0.2);  // ~14.4 GB/s
}

TEST(MemoryModel, SharingHalvesBandwidth) {
  auto mem = ep::alveo_u55c().memory;
  ep::MemoryStream a, b;
  a.bytes = b.bytes = 500'000'000;
  a.channels = b.channels = {0};  // both on channel 0
  double shared = ep::contention_time_seconds({a, b}, mem);
  a.channels = {0};
  b.channels = {1};  // disjoint channels
  double disjoint = ep::contention_time_seconds({a, b}, mem);
  EXPECT_NEAR(shared / disjoint, 2.0, 0.05);
}

TEST(MemoryModel, PackingEfficiency) {
  EXPECT_DOUBLE_EQ(ep::naive_packing_efficiency(16, 512), 16.0 / 512.0);
  EXPECT_DOUBLE_EQ(ep::packed_packing_efficiency(16, 512), 1.0);
  // 48-bit elements cannot fill a 512-bit word exactly: 10*48 = 480.
  EXPECT_NEAR(ep::packed_packing_efficiency(48, 512), 480.0 / 512.0, 1e-12);
  EXPECT_DOUBLE_EQ(ep::packed_packing_efficiency(64, 512), 1.0);
}

TEST(MemoryModel, PackingShortensTransfers) {
  auto mem = ep::alveo_u55c().memory;
  ep::MemoryStream packed, naive;
  packed.bytes = naive.bytes = 100'000'000;
  packed.channels = naive.channels = {0};
  packed.packing_efficiency = ep::packed_packing_efficiency(16, 512);
  naive.packing_efficiency = ep::naive_packing_efficiency(16, 512);
  double tp = ep::contention_time_seconds({packed}, mem);
  double tn = ep::contention_time_seconds({naive}, mem);
  EXPECT_NEAR(tn / tp, 32.0, 0.5);  // 512/16
}

// ---------------------------------------------------------------- XRT model

TEST(XrtApi, BufferLifecycle) {
  ep::Device dev(ep::alveo_u55c());
  auto bo = dev.alloc(1024);
  ASSERT_TRUE(bo.has_value());
  EXPECT_EQ(dev.allocated_bytes(), 1024);
  EXPECT_TRUE(dev.sync_to_device(*bo).is_ok());
  EXPECT_TRUE(dev.sync_from_device(*bo).is_ok());
  EXPECT_TRUE(dev.free(*bo).is_ok());
  EXPECT_EQ(dev.allocated_bytes(), 0);
  EXPECT_FALSE(dev.free(*bo).is_ok());
  EXPECT_GT(dev.now_us(), 0.0);
  EXPECT_EQ(dev.stats().bytes_to_device, 1024);
}

TEST(XrtApi, OutOfMemory) {
  ep::Device dev(ep::alveo_u55c());
  auto bo = dev.alloc(100LL * 1024 * 1024 * 1024);  // 100 GB > 16 GB HBM
  EXPECT_FALSE(bo.has_value());
}

TEST(XrtApi, KernelMustFitAndBeProgrammed) {
  ep::Device dev(ep::alveo_u55c());
  EXPECT_FALSE(dev.run("ghost").has_value());
  eh::KernelReport r;
  r.name = "big";
  r.area = {2'000'000, 0, 0, 0};  // exceeds fabric
  EXPECT_FALSE(dev.load_kernel("big", r).is_ok());
  r.area = {10'000, 10'000, 10, 10};
  r.total_cycles = 3000;
  ASSERT_TRUE(dev.load_kernel("ok", r).is_ok());
  auto us = dev.run("ok");
  ASSERT_TRUE(us.has_value());
  EXPECT_NEAR(*us, 3000.0 / 300.0, 1e-9);
}

TEST(XrtApi, IoOverheadFactorScalesTransfers) {
  ep::Device native(ep::alveo_u55c(), 1.0);
  ep::Device emulated(ep::alveo_u55c(), 2.5);
  auto a = native.alloc(64 * 1024 * 1024);
  auto b = emulated.alloc(64 * 1024 * 1024);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(native.sync_to_device(*a).is_ok());
  ASSERT_TRUE(emulated.sync_to_device(*b).is_ok());
  EXPECT_NEAR(emulated.now_us() / native.now_us(), 2.5, 0.01);
}

// ------------------------------------------------------------------ network

TEST(Network, MessageTimeComponents) {
  ep::NetworkSpec net;
  double empty = ep::message_seconds(net, 0);
  EXPECT_NEAR(empty, 30e-6, 1e-9);
  // 1 GB at 10 Gb/s is ~0.8 s of wire time, plus packet overheads.
  double big = ep::message_seconds(net, 1'000'000'000);
  EXPECT_GT(big, 0.8);
  EXPECT_LT(big, 1.5);
}

TEST(Network, ZrlmpiCollectives) {
  ep::ZrlmpiCommunicator comm(4);
  ASSERT_TRUE(comm.broadcast(0, 1000).is_ok());
  EXPECT_EQ(comm.messages(), 3);
  EXPECT_EQ(comm.bytes_moved(), 3000);
  ASSERT_TRUE(comm.gather(0, 500).is_ok());
  EXPECT_EQ(comm.messages(), 6);
  EXPECT_FALSE(comm.send(0, 0, 10).is_ok());
  EXPECT_FALSE(comm.send(0, 9, 10).is_ok());
  EXPECT_GT(comm.now_us(), 0.0);
}

// ------------------------------------------------------------------ Olympus

class OlympusTest : public ::testing::Test {
protected:
  void SetUp() override {
    everest::dialects::register_everest_dialects(ctx_);
    auto loops = dot_loops(65536);
    auto report = eh::schedule_kernel(*loops);
    ASSERT_TRUE(report.has_value());
    kernel_ = *report;
  }
  everest::ir::Context ctx_;
  eh::KernelReport kernel_;
};

TEST_F(OlympusTest, ReplicationScalesCompute) {
  eo::SystemGenerator gen(ep::alveo_u55c());
  eo::Options one;
  eo::Options four;
  four.replicas = 4;
  auto e1 = gen.estimate(kernel_, one);
  auto e4 = gen.estimate(kernel_, four);
  ASSERT_TRUE(e1.has_value());
  ASSERT_TRUE(e4.has_value());
  EXPECT_NEAR(e1->compute_us / e4->compute_us, 4.0, 0.01);
  EXPECT_GT(e4->area.luts, e1->area.luts);
}

TEST_F(OlympusTest, DoubleBufferingHidesTransfers) {
  eo::SystemGenerator gen(ep::alveo_u55c());
  eo::Options on;
  eo::Options off;
  off.double_buffering = false;
  off.dataflow_pipelining = false;
  auto fast = gen.estimate(kernel_, on);
  auto slow = gen.estimate(kernel_, off);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  EXPECT_LT(fast->total_us, slow->total_us);
  // Serialized total is compute + memory exactly.
  EXPECT_NEAR(slow->total_us, slow->compute_us + slow->memory_us, 1e-9);
}

TEST_F(OlympusTest, PackingImprovesBandwidth) {
  eo::SystemGenerator gen(ep::alveo_u55c());
  eo::Options packed;
  packed.element_bits = 16;
  eo::Options naive = packed;
  naive.pack_data = false;
  auto p = gen.estimate(kernel_, packed);
  auto n = gen.estimate(kernel_, naive);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(n.has_value());
  EXPECT_GT(p->effective_bandwidth_gbps, n->effective_bandwidth_gbps);
  EXPECT_LT(p->memory_us, n->memory_us);
}

TEST_F(OlympusTest, GeneratedIrVerifies) {
  eo::SystemGenerator gen(ep::alveo_u55c());
  eo::Options options;
  options.replicas = 2;
  auto ir = gen.generate_ir(kernel_, options);
  ASSERT_TRUE(ir.has_value()) << ir.error().message;
  auto status = ctx_.verify(**ir);
  EXPECT_TRUE(status.is_ok()) << status.message();
  EXPECT_EQ((*ir)->find_all("olympus.kernel").size(), 2u);
  EXPECT_EQ((*ir)->find_all("olympus.plm").size(), 4u);
  EXPECT_EQ((*ir)->find_all("olympus.host_transfer").size(), 2u);
}

TEST_F(OlympusTest, ExecuteOnDeviceAdvancesTimeline) {
  eo::SystemGenerator gen(ep::alveo_u55c());
  ep::Device dev(ep::alveo_u55c());
  auto us = gen.execute_on(dev, kernel_, {});
  ASSERT_TRUE(us.has_value()) << us.error().message;
  EXPECT_GT(*us, 0.0);
  EXPECT_EQ(dev.stats().kernel_launches, 1);
  EXPECT_GT(dev.stats().bytes_to_device, 0);
}

TEST_F(OlympusTest, RejectsOverReplication) {
  eo::SystemGenerator gen(ep::cloudfpga());
  eo::Options options;
  options.replicas = 0;
  EXPECT_FALSE(gen.estimate(kernel_, options).has_value());
}
