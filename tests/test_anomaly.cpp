// Tests for the anomaly detection service: detectors, TPE sampler, AutoML
// model selection, and the JSON-emitting detection node.

#include <gtest/gtest.h>

#include "anomaly/detectors.hpp"
#include "anomaly/service.hpp"
#include "anomaly/tpe.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace ea = everest::anomaly;
namespace es = everest::support;

namespace {

/// Gaussian blob with `n_anomalies` far outliers at known indices.
struct SeededData {
  ea::Table rows;
  std::vector<std::size_t> truth;
};

SeededData make_data(std::size_t n, std::size_t n_anomalies, int dims,
                     std::uint64_t seed) {
  es::Pcg32 rng(seed);
  SeededData data;
  data.rows.resize(n, ea::Row(static_cast<std::size_t>(dims)));
  for (auto &row : data.rows) {
    for (auto &v : row) v = rng.normal(0.0, 1.0);
  }
  // Scatter anomalies at deterministic positions; each gets its own far
  // location (random signs per dim) so they don't form a tight cluster.
  for (std::size_t k = 0; k < n_anomalies; ++k) {
    std::size_t idx = (k * 37 + 11) % n;
    for (auto &v : data.rows[idx]) {
      double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
      v = sign * rng.normal(8.0, 1.5);
    }
    data.truth.push_back(idx);
  }
  std::sort(data.truth.begin(), data.truth.end());
  data.truth.erase(std::unique(data.truth.begin(), data.truth.end()),
                   data.truth.end());
  return data;
}

}  // namespace

// ---------------------------------------------------------------- detectors

class DetectorFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorFamilies, FindsObviousOutliers) {
  auto data = make_data(400, 12, 3, 7);
  auto detector = ea::make_detector(GetParam(), {}, 99);
  ASSERT_TRUE(detector.has_value()) << detector.error().message;
  ASSERT_TRUE((*detector)->fit(data.rows).is_ok());
  auto predicted = ea::detect_anomalies(
      **detector, data.rows,
      static_cast<double>(data.truth.size()) / data.rows.size());
  auto score = es::score_detection(predicted, data.truth);
  EXPECT_GT(score.f1, 0.8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DetectorFamilies,
                         ::testing::ValuesIn(ea::detector_names()));

TEST(Detectors, RejectDegenerateInput) {
  ea::ZScoreDetector z;
  EXPECT_FALSE(z.fit({}).is_ok());
  EXPECT_FALSE(z.fit({{1.0}, {1.0, 2.0}}).is_ok());  // ragged
  ea::IsolationForest forest(0, 0, 1);
  EXPECT_FALSE(forest.fit({{1.0}, {2.0}, {3.0}, {4.0}}).is_ok());
}

TEST(Detectors, ScoresOrderOutliersAboveInliers) {
  auto data = make_data(300, 6, 2, 21);
  for (const auto &name : ea::detector_names()) {
    auto detector = ea::make_detector(name, {}, 5);
    ASSERT_TRUE(detector.has_value());
    ASSERT_TRUE((*detector)->fit(data.rows).is_ok());
    double inlier_score = (*detector)->score(ea::Row{0.1, -0.2});
    double outlier_score = (*detector)->score(ea::Row{8.0, 8.0});
    EXPECT_GT(outlier_score, inlier_score) << name;
  }
}

TEST(Detectors, FactoryUnknownFamily) {
  EXPECT_FALSE(ea::make_detector("oracle", {}, 1).has_value());
}

TEST(Detectors, MahalanobisHandlesCorrelation) {
  // Strongly correlated 2-d blob: the point (2, -2) violates correlation and
  // must outscore (2, 2) which follows it, even at equal norms.
  es::Pcg32 rng(3);
  ea::Table rows;
  for (int i = 0; i < 500; ++i) {
    double a = rng.normal();
    rows.push_back({a + rng.normal(0, 0.1), a + rng.normal(0, 0.1)});
  }
  ea::MahalanobisDetector det;
  ASSERT_TRUE(det.fit(rows).is_ok());
  EXPECT_GT(det.score({2.0, -2.0}), 3.0 * det.score({2.0, 2.0}));
}

// ---------------------------------------------------------------------- TPE

TEST(Tpe, RandomSamplesStayInRange) {
  ea::TpeSampler sampler({{"x", 2.0, 5.0, false, false},
                          {"n", 1, 9, false, true}},
                         123);
  for (int i = 0; i < 100; ++i) {
    auto s = sampler.sample_random();
    EXPECT_GE(s.at("x"), 2.0);
    EXPECT_LE(s.at("x"), 5.0);
    EXPECT_EQ(s.at("n"), std::round(s.at("n")));
  }
}

TEST(Tpe, SuggestionsConcentrateNearOptimum) {
  // Minimize (x - 3)^2 over [0, 10]: after warmup, TPE proposals should
  // cluster around 3 much tighter than uniform random would.
  ea::TpeSampler sampler({{"x", 0.0, 10.0, false, false}}, 77);
  std::vector<ea::Trial> history;
  for (int t = 0; t < 60; ++t) {
    auto params = sampler.suggest(history);
    double x = params.at("x");
    history.push_back({params, (x - 3.0) * (x - 3.0)});
  }
  double late_mean_dist = 0.0;
  int late = 0;
  for (std::size_t t = 40; t < history.size(); ++t) {
    late_mean_dist += std::fabs(history[t].params.at("x") - 3.0);
    ++late;
  }
  late_mean_dist /= late;
  // Uniform random would average |x-3| ~ 2.9; TPE should do much better.
  EXPECT_LT(late_mean_dist, 1.5);
}

TEST(Tpe, BeatsRandomOnEqualBudget) {
  auto objective = [](double x, double y) {
    return (x - 7.0) * (x - 7.0) + (y + 2.0) * (y + 2.0);
  };
  std::vector<ea::ParamSpec> space{{"x", -10, 10, false, false},
                                   {"y", -10, 10, false, false}};
  double best_tpe = 1e18, best_rand = 1e18;
  {
    ea::TpeSampler sampler(space, 11);
    std::vector<ea::Trial> history;
    for (int t = 0; t < 80; ++t) {
      auto p = sampler.suggest(history);
      double loss = objective(p.at("x"), p.at("y"));
      best_tpe = std::min(best_tpe, loss);
      history.push_back({p, loss});
    }
  }
  {
    ea::TpeSampler sampler(space, 11);
    for (int t = 0; t < 80; ++t) {
      auto p = sampler.sample_random();
      best_rand = std::min(best_rand, objective(p.at("x"), p.at("y")));
    }
  }
  EXPECT_LT(best_tpe, best_rand);
}

// ------------------------------------------------------------------ service

TEST(Service, ModelSelectionFindsGoodModel) {
  auto data = make_data(500, 20, 3, 13);
  ea::SelectionConfig config;
  config.max_trials = 50;
  config.contamination = 20.0 / 500.0;
  auto result = ea::select_model(data.rows, data.truth, config);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_GT(result->best_f1, 0.85);
  EXPECT_FALSE(result->model.empty());
  // Best-so-far curve is monotone.
  for (std::size_t i = 1; i < result->best_curve.size(); ++i)
    EXPECT_GE(result->best_curve[i], result->best_curve[i - 1]);
}

TEST(Service, SelectionValidatesInput) {
  EXPECT_FALSE(ea::select_model({}, {}, {}).has_value());
  ea::SelectionConfig bad;
  bad.max_trials = 0;
  auto data = make_data(50, 2, 2, 1);
  EXPECT_FALSE(ea::select_model(data.rows, data.truth, bad).has_value());
}

TEST(Service, DetectionNodeEmitsJsonContract) {
  auto data = make_data(300, 10, 2, 31);
  auto detector = ea::make_detector("isolation_forest", {}, 55);
  ASSERT_TRUE(detector.has_value());
  ea::DetectionNode node(std::move(*detector), 10.0 / 300.0);
  ASSERT_TRUE(node.fit(data.rows).is_ok());

  auto batch = make_data(100, 5, 2, 32);
  auto doc = node.process(batch.rows);
  ASSERT_TRUE(doc.has_value()) << doc.error().message;
  EXPECT_TRUE((*doc)["anomalies"].is_array());
  EXPECT_EQ((*doc)["model"].as_string(), "isolation_forest");
  EXPECT_EQ((*doc)["batch_size"].as_int(), 100);
  EXPECT_EQ((*doc)["count"].as_int(),
            static_cast<std::int64_t>((*doc)["anomalies"].size()));
  // The JSON round-trips.
  auto reparsed = es::Json::parse(doc->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), doc->dump());
}

TEST(Service, DetectionNodeRequiresFit) {
  auto detector = ea::make_detector("zscore", {}, 1);
  ASSERT_TRUE(detector.has_value());
  ea::DetectionNode node(std::move(*detector), 0.05);
  EXPECT_FALSE(node.process({{1.0}}).has_value());
}

TEST(Service, ContinuousUpdateTracksDrift) {
  // The stream's mean drifts; with continuous updates, points near the new
  // mean stop being anomalous.
  auto detector = ea::make_detector("zscore", {}, 1);
  ASSERT_TRUE(detector.has_value());
  ea::DetectionNode node(std::move(*detector), 0.05, /*window=*/200);
  es::Pcg32 rng(17);
  ea::Table initial;
  for (int i = 0; i < 200; ++i) initial.push_back({rng.normal(0.0, 1.0)});
  ASSERT_TRUE(node.fit(initial).is_ok());

  // Before drift: a point at 6.0 scores as anomalous.
  double before = node.detector().score({6.0});
  // Feed batches centered at 6.0 (the drifted regime).
  for (int b = 0; b < 5; ++b) {
    ea::Table batch;
    for (int i = 0; i < 100; ++i) batch.push_back({rng.normal(6.0, 1.0)});
    ASSERT_TRUE(node.process(batch).has_value());
  }
  double after = node.detector().score({6.0});
  EXPECT_LT(after, before * 0.2);
}
