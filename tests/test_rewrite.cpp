// Rewrite-driver tests (labels: perf, concurrency — the differential tests
// also run under the tsan preset): randomized differential equivalence
// between the worklist driver and the legacy full-module sweep, worklist
// re-enqueue of pattern-created ops, non-convergence reporting through obs
// counters and canonicalize_checked, a perf smoke asserting worklist visits
// scale with the amount of change, and multi-threaded driver/compile runs.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ir/builder.hpp"
#include "ir/ir.hpp"
#include "ir/rewrite.hpp"
#include "obs/trace.hpp"
#include "sdk/basecamp.hpp"
#include "support/rng.hpp"
#include "transforms/canonicalize.hpp"
#include "usecases/rrtmg.hpp"

namespace ei = everest::ir;
namespace eo = everest::obs;
namespace es = everest::sdk;
namespace et = everest::transforms;
namespace rr = everest::usecases::rrtmg;

namespace {

const ei::Type kF64 = ei::Type::floating(64);

/// A random arith DAG: opaque sources the folder cannot see through, small
/// integer constants (including the 0.0/1.0 the identity patterns care
/// about), a pile of binary/unary arith ops over earlier values, sometimes a
/// nested region, and a sink keeping a random subset alive. Everything else
/// is fair game for folding and DCE.
std::unique_ptr<ei::Module> random_arith_module(std::uint64_t seed) {
  everest::support::Pcg32 rng(seed);
  auto module = std::make_unique<ei::Module>();
  ei::OpBuilder b(&module->body());

  std::vector<ei::Value *> pool;
  const std::size_t nsrc = 2 + rng.next() % 3;
  for (std::size_t i = 0; i < nsrc; ++i) {
    pool.push_back(b.create_value(
        "test.source", {}, kF64,
        {{"id", ei::Attribute(static_cast<std::int64_t>(i))}}));
  }
  const std::size_t nconst = 3 + rng.next() % 4;
  for (std::size_t i = 0; i < nconst; ++i) {
    pool.push_back(
        b.constant_f64(static_cast<double>(rng.next() % 7) - 2.0));
  }

  static const char *const kBinary[] = {"arith.addf", "arith.subf",
                                        "arith.mulf", "arith.divf",
                                        "arith.minf", "arith.maxf"};
  auto pick = [&] { return pool[rng.next() % pool.size()]; };
  const std::size_t nops = 20 + rng.next() % 31;
  for (std::size_t i = 0; i < nops; ++i) {
    if (rng.next() % 8 == 0) {
      pool.push_back(b.create_value("arith.negf", {pick()}, kF64));
    } else {
      pool.push_back(
          b.create_value(kBinary[rng.next() % 6], {pick(), pick()}, kF64));
    }
  }

  if (rng.next() % 2 == 0) {
    ei::Operation *region_op = ei::Operation::create(
        module->arena(), ei::Symbol("test.region"), {}, {}, {}, 1);
    ei::Block &inner = region_op->region(0).add_block();
    ei::OpBuilder ib(&inner);
    ei::Value *c0 = ib.constant_f64(static_cast<double>(rng.next() % 5));
    ei::Value *c1 = ib.constant_f64(static_cast<double>(rng.next() % 5));
    ei::Value *sum = ib.create_value("arith.addf", {c0, c1}, kF64);
    ei::Value *dead = ib.create_value("arith.mulf", {sum, c0}, kF64);
    (void)dead;  // unused: DCE food inside a nested region
    ib.create("test.sink", {sum}, {});
    module->body().attach(region_op);
  }

  std::vector<ei::Value *> live;
  for (ei::Value *v : pool) {
    if (rng.next() % 2 == 0) live.push_back(v);
  }
  if (live.empty()) live.push_back(pool.back());
  b.create("test.sink", live, {});
  return module;
}

/// The canonicalize pattern set, optionally extended with an expansion
/// pattern (subf -> addf(lhs, negf(rhs))) whose created negf/addf ops are
/// themselves matched by the fold patterns — the re-enqueue path.
std::vector<std::shared_ptr<ei::RewritePattern>> differential_patterns(
    bool with_expansion) {
  auto patterns = et::canonicalize_patterns();
  if (with_expansion) {
    patterns.push_back(std::make_shared<ei::LambdaPattern>(
        "arith.subf", [](ei::Operation &op, ei::PatternRewriter &rw) {
          ei::Value *neg = rw.create_value_before(&op, "arith.negf",
                                                  {op.operand(1)}, kF64);
          ei::Value *add = rw.create_value_before(
              &op, "arith.addf", {op.operand(0), neg}, kF64);
          rw.replace_op(&op, {add});
          return true;
        }));
  }
  return patterns;
}

/// Runs both drivers on clones of `module`; returns false (and fills `why`)
/// on any divergence. Thread-safe: touches only its own clones.
bool drivers_agree(const ei::Module &module, bool with_expansion,
                   std::string *why) {
  auto patterns = differential_patterns(with_expansion);
  ei::Module wl_mod = ei::clone_module(module);
  ei::Module lg_mod = ei::clone_module(module);
  auto wl = ei::apply_patterns_greedily(wl_mod, patterns,
                                        /*max_iterations=*/64,
                                        ei::RewriteDriver::Worklist);
  auto lg = ei::apply_patterns_greedily(lg_mod, patterns,
                                        /*max_iterations=*/64,
                                        ei::RewriteDriver::LegacySweep);
  if (!wl.converged || !lg.converged) {
    *why = "driver did not converge";
    return false;
  }
  if (wl.rewrites != lg.rewrites) {
    *why = "rewrites " + std::to_string(wl.rewrites) + " vs " +
           std::to_string(lg.rewrites);
    return false;
  }
  const std::string wl_text = wl_mod.str();
  const std::string lg_text = lg_mod.str();
  if (wl_text != lg_text) {
    *why = "modules diverged:\n--- worklist ---\n" + wl_text +
           "--- legacy ---\n" + lg_text;
    return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------- Differential tests

TEST(RewriteDifferential, RandomModulesRewriteIdentically) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    auto module = random_arith_module(seed);
    for (bool with_expansion : {false, true}) {
      std::string why;
      EXPECT_TRUE(drivers_agree(*module, with_expansion, &why))
          << "seed " << seed << " expansion=" << with_expansion << ": " << why;
      ++checked;
    }
  }
  EXPECT_GE(checked, 100);
}

TEST(RewriteDifferential, ExpansionChainCollapsesToConstant) {
  // subf(3, 1) expands to addf(3, negf(1)); negf folds, then addf folds.
  // Both drivers must land on the single constant 2.0.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *lhs = b.constant_f64(3.0);
  ei::Value *rhs = b.constant_f64(1.0);
  ei::Value *diff = b.create_value("arith.subf", {lhs, rhs}, kF64);
  b.create("test.sink", {diff}, {});

  std::string why;
  ASSERT_TRUE(drivers_agree(module, /*with_expansion=*/true, &why)) << why;

  auto patterns = differential_patterns(/*with_expansion=*/true);
  auto stats = ei::apply_patterns_greedily(module, patterns);
  EXPECT_TRUE(stats.converged);
  module.walk([](ei::Operation &op) {
    EXPECT_TRUE(op.name() == "arith.constant" || op.name() == "test.sink")
        << op.name();
  });
  ei::Operation *c = module.find_first("arith.constant");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->attr_double("value"), 2.0);
}

// ----------------------------------------------------- Worklist re-enqueue

TEST(RewriteWorklist, CreatedOpsAreReenqueued) {
  // Pattern A rewrites test.make into test.made; pattern B folds test.made
  // to a constant. Under the worklist driver B can only see the op if A's
  // creation was re-enqueued.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *v = b.create_value("test.make", {}, kF64);
  b.create("test.sink", {v}, {});

  std::vector<std::shared_ptr<ei::RewritePattern>> patterns;
  patterns.push_back(std::make_shared<ei::LambdaPattern>(
      "test.make", [](ei::Operation &op, ei::PatternRewriter &rw) {
        ei::Value *made = rw.create_value_before(&op, "test.made", {}, kF64);
        rw.replace_op(&op, {made});
        return true;
      }));
  patterns.push_back(std::make_shared<ei::LambdaPattern>(
      "test.made", [](ei::Operation &op, ei::PatternRewriter &rw) {
        ei::Value *c = rw.create_value_before(
            &op, "arith.constant", {}, kF64, {{"value", ei::Attribute(7.0)}});
        rw.replace_op(&op, {c});
        return true;
      }));

  auto stats = ei::apply_patterns_greedily(module, patterns, 16,
                                           ei::RewriteDriver::Worklist);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rewrites, 2u);
  EXPECT_EQ(module.find_first("test.make"), nullptr);
  EXPECT_EQ(module.find_first("test.made"), nullptr);
  ei::Operation *c = module.find_first("arith.constant");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->attr_double("value"), 7.0);
}

// ------------------------------------------------------------- Perf smoke

TEST(RewritePerf, WorklistVisitsScaleWithChangeNotModuleSize) {
  // A module that is mostly inert: opaque ops no pattern matches, plus one
  // long dead chain. The legacy sweep pays a full module walk for every
  // cascade level; the worklist only revisits what the erasures touch.
  ei::Module module;
  ei::OpBuilder b(&module.body());
  ei::Value *src = b.create_value("test.source", {}, kF64);
  std::vector<ei::Value *> keep;
  for (int i = 0; i < 120; ++i)
    keep.push_back(b.create_value("test.opaque", {src}, kF64));
  ei::Value *chain = b.create_value("arith.addf", {src, src}, kF64);
  for (int i = 0; i < 40; ++i)
    chain = b.create_value("arith.mulf", {chain, src}, kF64);
  // `chain` is never consumed: a 41-deep dead chain.
  keep.push_back(src);
  b.create("test.sink", keep, {});

  const std::size_t module_size = module.op_count();
  auto patterns = et::canonicalize_patterns();
  ei::Module wl_mod = ei::clone_module(module);
  auto wl = ei::apply_patterns_greedily(wl_mod, patterns,
                                        /*max_iterations=*/64,
                                        ei::RewriteDriver::Worklist);
  ei::Module lg_mod = ei::clone_module(module);
  auto lg = ei::apply_patterns_greedily(lg_mod, patterns,
                                        /*max_iterations=*/64,
                                        ei::RewriteDriver::LegacySweep);

  ASSERT_TRUE(wl.converged);
  ASSERT_TRUE(lg.converged);
  EXPECT_EQ(wl_mod.str(), lg_mod.str());
  // The legacy driver erases one dead-chain level per sweep.
  EXPECT_GT(lg.iterations, 40u);
  // The worklist must beat "iterations x module size" by a wide margin, and
  // strictly beat the sweep driver outright.
  EXPECT_LT(wl.ops_visited, lg.iterations * module_size);
  EXPECT_LT(wl.ops_visited, lg.ops_visited);
  // It should be within a small constant of (module size + chain length),
  // not proportional to sweeps x size; 3x covers re-pushed neighbors.
  EXPECT_LT(wl.ops_visited, 3 * module_size);
}

// -------------------------------------------------- Non-convergence + obs

TEST(RewriteObs, NonConvergenceBumpsCounterAndReportsStats) {
  eo::TraceRecorder recorder;
  eo::ScopedGlobalRecorder scope(&recorder);

  ei::Module module;
  ei::OpBuilder b(&module.body());
  b.constant_f64(0.0);
  auto bump = std::make_shared<ei::LambdaPattern>(
      "arith.constant", [](ei::Operation &op, ei::PatternRewriter &) {
        op.set_attr("value", ei::Attribute(op.attr_double("value") + 1.0));
        return true;
      });
  auto stats = ei::apply_patterns_greedily(
      module, {bump}, /*max_iterations=*/3, ei::RewriteDriver::Worklist);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(recorder.counter("ir.rewrite.nonconverged").value(), 1);
  EXPECT_EQ(recorder.counter("ir.rewrite.fires.arith.constant").value(), 3);
  EXPECT_GE(recorder.counter("ir.rewrite.ops_visited").value(), 3);
  EXPECT_GE(recorder.counter("ir.rewrite.worklist_pushes").value(), 1);
}

TEST(RewriteObs, CanonicalizeCheckedSurfacesNonConvergence) {
  auto make_foldable = [] {
    auto module = std::make_unique<ei::Module>();
    ei::OpBuilder b(&module->body());
    ei::Value *sum =
        b.create_value("arith.addf", {b.constant_f64(1.0), b.constant_f64(2.0)},
                       kF64);
    b.create("test.sink", {sum}, {});
    return module;
  };

  // One outer iteration cannot both rewrite and re-verify the fixpoint.
  auto strict = make_foldable();
  et::CanonicalizeStats stats;
  auto status = et::canonicalize_checked(*strict, &stats,
                                         /*max_iterations=*/1);
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(stats.converged);
  EXPECT_NE(status.message().find("no fixpoint"), std::string::npos);

  // With the default budget the same module converges cleanly.
  auto relaxed = make_foldable();
  EXPECT_TRUE(et::canonicalize_checked(*relaxed).is_ok());
}

// ---------------------------------------------------------- Concurrency

TEST(RewriteConcurrency, DifferentialAcrossThreads) {
  // Every thread builds, rewrites, and prints its own modules; the shared
  // state under test is the process-wide identifier interner.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kSeedsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (std::uint64_t i = 0; i < kSeedsPerThread; ++i) {
        const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(t) * 100 + i;
        auto module = random_arith_module(seed);
        std::string why;
        if (!drivers_agree(*module, /*with_expansion=*/true, &why))
          failures.fetch_add(1);
      }
    });
  }
  for (auto &thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RewriteConcurrency, ParallelCompileManyMatchesSerial) {
  // End to end: the worklist driver runs inside canonicalize inside
  // Basecamp; eight workers must reproduce the serial artifacts bytewise.
  std::vector<es::CompileJob> jobs;
  for (std::int64_t ncells : {8, 16}) {
    rr::Config cfg;
    cfg.ncells = ncells;
    rr::Data data = rr::make_data(cfg);
    es::CompileJob job;
    job.kind = es::CompileJob::Kind::Ekl;
    job.name = "rrtmg-" + std::to_string(ncells);
    job.source = rr::ekl_source();
    job.bindings = rr::bindings(data);
    jobs.push_back(std::move(job));
  }

  es::Basecamp serial;
  auto baseline = serial.compile_many(jobs, 1);
  ASSERT_EQ(baseline.size(), jobs.size());
  es::Basecamp parallel;
  auto results = parallel.compile_many(jobs, 8);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(baseline[i].has_value()) << baseline[i].error().message;
    ASSERT_TRUE(results[i].has_value()) << results[i].error().message;
    EXPECT_EQ(baseline[i]->teil_ir->str(), results[i]->teil_ir->str());
    EXPECT_EQ(baseline[i]->loop_ir->str(), results[i]->loop_ir->str());
    EXPECT_EQ(baseline[i]->system_ir->str(), results[i]->system_ir->str());
  }
}
