// Tests for the use-case workloads: traffic (map matching, GMM), PTDR,
// energy prediction (Kernel Ridge), air quality, and the speed-prediction
// CNN. Each asserts the domain behaviour the paper relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "frontend/condrust_parser.hpp"
#include "hls/scheduler.hpp"
#include "runtime/dfg_executor.hpp"
#include "usecases/airquality.hpp"
#include "usecases/energy.hpp"
#include "usecases/ptdr.hpp"
#include "usecases/speednet.hpp"
#include "usecases/traffic.hpp"

namespace tr = everest::usecases::traffic;
namespace pt = everest::usecases::ptdr;
namespace en = everest::usecases::energy;
namespace aq = everest::usecases::airquality;
namespace sn = everest::usecases::speednet;
namespace er = everest::runtime;

// ------------------------------------------------------------------ traffic

TEST(Traffic, NetworkGeometry) {
  auto net = tr::make_grid_network(4, 1.0, 1);
  // 2 * n * (n+1) segments on an n x n grid.
  EXPECT_EQ(net.segments.size(), 40u);
  for (const auto &s : net.segments) {
    EXPECT_NEAR(s.length_km(), 1.0, 1e-12);
    EXPECT_GE(s.speed_limit_kmh, 30.0);
    EXPECT_LE(s.speed_limit_kmh, 70.0);
  }
  // Distance from a point on the segment is ~0.
  const auto &s = net.segments[0];
  EXPECT_NEAR(s.distance_km(0.5 * (s.x1 + s.x2), 0.5 * (s.y1 + s.y2)), 0.0,
              1e-12);
}

TEST(Traffic, TraceFollowsNetwork) {
  auto net = tr::make_grid_network(6, 1.0, 2);
  auto trace = tr::make_trace(net, 50, 0.02, 3);
  ASSERT_EQ(trace.points.size(), 50u);
  ASSERT_EQ(trace.true_segments.size(), 50u);
  // Each point lies near its true segment.
  for (std::size_t i = 0; i < trace.points.size(); ++i) {
    const auto &seg =
        net.segments[static_cast<std::size_t>(trace.true_segments[i])];
    EXPECT_LT(seg.distance_km(trace.points[i].x, trace.points[i].y), 0.15);
  }
}

TEST(Traffic, ViterbiBeatsNoiseFloor) {
  auto net = tr::make_grid_network(8, 1.0, 5);
  auto trace = tr::make_trace(net, 80, 0.05, 6);
  auto matched = tr::map_match(net, trace.points);
  ASSERT_TRUE(matched.has_value()) << matched.error().message;
  double acc = tr::matching_accuracy(*matched, trace.true_segments);
  EXPECT_GT(acc, 0.8);
}

TEST(Traffic, MapMatchErrors) {
  auto net = tr::make_grid_network(3, 1.0, 1);
  EXPECT_FALSE(tr::map_match(net, {}).has_value());
  tr::MapMatchConfig bad;
  bad.max_candidates = 0;
  EXPECT_FALSE(tr::map_match(net, {{0.5, 0.5, 0.0}}, bad).has_value());
}

TEST(Traffic, DfgPipelineMatchesAndIsDeterministic) {
  auto net = tr::make_grid_network(8, 1.0, 5);
  auto trace = tr::make_trace(net, 60, 0.04, 11);

  auto m = everest::frontend::parse_condrust(tr::mapmatch_condrust_source());
  ASSERT_TRUE(m.has_value()) << m.error().message;

  er::NodeRegistry registry;
  tr::register_mapmatch_operators(registry, net);
  std::map<std::string, er::Stream> inputs;
  inputs["points"] = tr::trace_to_stream(trace);

  auto r1 = er::execute_dfg(**m, registry, inputs, 1);
  auto r8 = er::execute_dfg(**m, registry, inputs, 8);
  ASSERT_TRUE(r1.has_value()) << r1.error().message;
  ASSERT_TRUE(r8.has_value());
  EXPECT_EQ(r1->at("best"), r8->at("best"));  // ConDRust determinism

  // Streaming greedy matching is still decent on low noise.
  std::vector<int> matched;
  for (const auto &rec : r1->at("best"))
    matched.push_back(static_cast<int>(rec[0]));
  EXPECT_GT(tr::matching_accuracy(matched, trace.true_segments), 0.6);
}

TEST(Traffic, GmmFitsBimodalSpeeds) {
  // Rush-hour + free-flow speeds form a bimodal distribution.
  auto obs = tr::make_speed_observations(60.0, 10, 0.3, 17);
  std::size_t missing = 0;
  for (double x : obs) missing += std::isnan(x);
  EXPECT_NEAR(static_cast<double>(missing) / obs.size(), 0.3, 0.05);

  auto speed = tr::predict_speed_gmm(obs, 3);
  ASSERT_TRUE(speed.has_value()) << speed.error().message;
  EXPECT_GT(*speed, 20.0);
  EXPECT_LT(*speed, 60.0);
}

TEST(Traffic, GmmValidation) {
  EXPECT_FALSE(tr::fit_gmm({1.0, 2.0}, 3).has_value());
  EXPECT_FALSE(tr::fit_gmm({1.0, 2.0, 3.0, 4.0}, 0).has_value());
  std::vector<double> all_nan(10, std::nan(""));
  EXPECT_FALSE(tr::predict_speed_gmm(all_nan).has_value());
}

TEST(Traffic, GmmRecoverstBimodalComponents) {
  everest::support::Pcg32 rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(20.0, 2.0));
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(55.0, 3.0));
  auto g = tr::fit_gmm(xs, 2);
  ASSERT_TRUE(g.has_value());
  double lo = std::min(g->mean[0], g->mean[1]);
  double hi = std::max(g->mean[0], g->mean[1]);
  EXPECT_NEAR(lo, 20.0, 1.5);
  EXPECT_NEAR(hi, 55.0, 1.5);
  EXPECT_NEAR(g->mixture_mean(), 37.5, 2.0);
}

// --------------------------------------------------------------------- PTDR

TEST(Ptdr, TravelTimeScalesWithRouteLength) {
  auto net = tr::make_grid_network(6, 1.0, 3);
  auto model = pt::make_model(net, 4);
  auto short_route = pt::make_route(net, 5, 7);
  auto long_route = pt::make_route(net, 25, 7);
  auto t_short = pt::monte_carlo(model, short_route, 40, 2000, 9);
  auto t_long = pt::monte_carlo(model, long_route, 40, 2000, 9);
  ASSERT_TRUE(t_short.has_value());
  ASSERT_TRUE(t_long.has_value());
  EXPECT_GT(t_long->mean_min, t_short->mean_min * 3.0);
  EXPECT_GE(t_long->p95_min, t_long->p50_min);
}

TEST(Ptdr, RushHourIsSlower) {
  auto net = tr::make_grid_network(6, 1.0, 3);
  auto model = pt::make_model(net, 4);
  auto route = pt::make_route(net, 15, 7);
  auto night = pt::monte_carlo(model, route, 12, 4000, 5);   // 03:00
  auto rush = pt::monte_carlo(model, route, 70, 4000, 5);    // 17:30
  ASSERT_TRUE(night.has_value());
  ASSERT_TRUE(rush.has_value());
  EXPECT_GT(rush->mean_min, night->mean_min * 1.2);
}

TEST(Ptdr, ConvergesWithSamples) {
  auto net = tr::make_grid_network(5, 1.0, 3);
  auto model = pt::make_model(net, 4);
  auto route = pt::make_route(net, 10, 2);
  auto a = pt::monte_carlo(model, route, 40, 20000, 1);
  auto b = pt::monte_carlo(model, route, 40, 20000, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(a->mean_min, b->mean_min, 0.05 * a->mean_min);
}

TEST(Ptdr, Validation) {
  auto net = tr::make_grid_network(3, 1.0, 3);
  auto model = pt::make_model(net, 4);
  EXPECT_FALSE(pt::monte_carlo(model, {{}}, 0, 0, 1).has_value());
  EXPECT_FALSE(pt::monte_carlo(model, {{{9999}}}, 0, 100, 1).has_value());
}

TEST(Ptdr, SamplingKernelSchedules) {
  auto loops = pt::sampling_kernel_ir(1024, 16);
  auto report = everest::hls::schedule_kernel(*loops);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_EQ(report->name, "ptdr_sample");
  ASSERT_EQ(report->stages.size(), 1u);
  EXPECT_EQ(report->stages[0].trip_count, 1024 * 16);
  // Samples iterate innermost, so the per-sample accumulation is NOT a
  // pipeline recurrence: the kernel reaches II = 1 (the FPGA design point).
  EXPECT_FALSE(report->stages[0].has_recurrence);
  EXPECT_EQ(report->stages[0].ii, 1);
  EXPECT_GT(report->output_bytes, 0);
}

// ------------------------------------------------------------------- energy

TEST(Energy, PowerCurveShape) {
  EXPECT_DOUBLE_EQ(en::power_curve_mw(1.0), 0.0);    // below cut-in
  EXPECT_DOUBLE_EQ(en::power_curve_mw(30.0), 0.0);   // beyond cut-out
  EXPECT_DOUBLE_EQ(en::power_curve_mw(15.0), 3.0);   // rated
  double half = en::power_curve_mw(7.5);
  EXPECT_GT(half, 0.0);
  EXPECT_LT(half, 3.0);
  EXPECT_LT(en::power_curve_mw(5.0), half);
}

TEST(Energy, ForecastErrorGrowsWithLead) {
  auto truth = en::simulate_wind(24 * 60, 3);
  auto fc = en::wrf_forecast(truth, 1.0, 4);
  double early_err = 0, late_err = 0;
  int days = 0;
  for (std::size_t h = 0; h + 24 <= truth.size(); h += 24) {
    early_err += std::fabs(fc[h + 1] - truth[h + 1]);
    late_err += std::fabs(fc[h + 23] - truth[h + 23]);
    ++days;
  }
  EXPECT_GT(late_err / days, early_err / days);
}

TEST(Energy, KernelRidgeLearnsSmoothFunction) {
  // y = sin(2x) + 0.5x over [0, 3].
  everest::support::Pcg32 rng(8);
  const std::int64_t n = 80;
  everest::numerics::Tensor x(everest::numerics::Shape{n, 1});
  everest::numerics::Tensor y(everest::numerics::Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    double xi = rng.uniform(0.0, 3.0);
    x(i, 0) = xi;
    y(i) = std::sin(2.0 * xi) + 0.5 * xi;
  }
  en::KernelRidge model(1e-4, 2.0);
  ASSERT_TRUE(model.fit(x, y).is_ok());
  for (double xi : {0.5, 1.5, 2.5}) {
    double pred = model.predict(std::vector<double>{xi});
    EXPECT_NEAR(pred, std::sin(2.0 * xi) + 0.5 * xi, 0.1) << xi;
  }
}

TEST(Energy, KernelRidgeRejectsBadShapes) {
  en::KernelRidge model;
  everest::numerics::Tensor x(everest::numerics::Shape{4, 2});
  everest::numerics::Tensor y(everest::numerics::Shape{5});
  EXPECT_FALSE(model.fit(x, y).is_ok());
}

TEST(Energy, ModelBeatsBaselinesInBacktest) {
  auto result = en::backtest(24 * 120, /*ensemble=*/3, /*seed=*/42);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_LT(result->mae_model, result->mae_persistence);
  EXPECT_LT(result->mae_model, result->mae_forecast);
}

TEST(Energy, EnsembleImprovesForecast) {
  auto one = en::backtest(24 * 100, 1, 7);
  auto five = en::backtest(24 * 100, 5, 7);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(five.has_value());
  EXPECT_LT(five->mae_model, one->mae_model * 1.05);  // at worst comparable
  EXPECT_LT(five->mae_forecast, one->mae_forecast);   // raw forecast improves
}

// -------------------------------------------------------------- air quality

TEST(AirQuality, CorrectionImprovesForecast) {
  aq::Config config;
  config.hours = 72;
  config.ensemble_size = 5;
  auto truth = aq::simulate_weather(96, 1);
  aq::WeatherSeries obs(truth.begin(), truth.begin() + 24);
  std::vector<aq::WeatherSeries> members;
  for (int e = 0; e < 5; ++e)
    members.push_back(aq::perturb_forecast(truth, 1.0, 100 + e));

  auto corrected = aq::correct_ensemble(members, obs, 24);
  double raw_rmse = 0, corr_rmse = 0;
  for (std::size_t h = 24; h < 96; ++h) {
    raw_rmse += std::pow(members[0][h].wind_speed_ms - truth[h].wind_speed_ms, 2);
    corr_rmse += std::pow(corrected[h].wind_speed_ms - truth[h].wind_speed_ms, 2);
  }
  EXPECT_LT(corr_rmse, raw_rmse);
}

TEST(AirQuality, DispersionPhysics) {
  aq::Weather calm{5.0, 90.0, 1.0};   // cold, toward receptor, slow
  aq::Weather windy{20.0, 90.0, 10.0};
  aq::Weather away{5.0, 270.0, 1.0};  // blowing away from receptor
  EXPECT_GT(aq::dispersion_index(calm, 100.0),
            aq::dispersion_index(windy, 100.0));
  EXPECT_GT(aq::dispersion_index(calm, 100.0),
            aq::dispersion_index(away, 100.0) * 5.0);
}

TEST(AirQuality, ScenarioProducesDecisions) {
  aq::Config config;
  config.hours = 72;
  auto report = aq::run_scenario(config);
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_GT(report->forecast_rmse_speed, 0.0);
  EXPECT_GE(report->cost_keur, 0.0);
  EXPECT_LE(report->reduction_days, 3);
}

TEST(AirQuality, LargerEnsembleLowersAverageCost) {
  // Averaged over many seeds, a larger corrected ensemble makes better
  // reduce/don't-reduce decisions.
  auto avg_cost = [](int ensemble) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      aq::Config config;
      config.hours = 72;
      config.ensemble_size = ensemble;
      config.seed = 1000 + seed;
      auto r = aq::run_scenario(config);
      EXPECT_TRUE(r.has_value());
      total += r->cost_keur;
    }
    return total / 30.0;
  };
  EXPECT_LE(avg_cost(7), avg_cost(1) * 1.1);
}

TEST(AirQuality, Validation) {
  aq::Config bad;
  bad.hours = 12;
  EXPECT_FALSE(aq::run_scenario(bad).has_value());
  bad.hours = 72;
  bad.ensemble_size = 0;
  EXPECT_FALSE(aq::run_scenario(bad).has_value());
}

// ----------------------------------------------------------------- speednet

TEST(Speednet, ModelImportsAndPredicts) {
  auto model = sn::load_model(42);
  ASSERT_TRUE(model.has_value()) << model.error().message;
  EXPECT_GT(model->parameter_count(), 500u);
  EXPECT_EQ(model->nodes.size(), 8u);

  auto speeds = tr::make_speed_observations(50.0, 1, 0.0, 3);
  std::vector<double> temp(96, 15.0), precip(96, 0.0);
  auto input = sn::make_input(speeds, temp, precip);
  auto pred = sn::predict(*model, input);
  ASSERT_TRUE(pred.has_value()) << pred.error().message;
  EXPECT_EQ(pred->size(), 4u);
}

TEST(Speednet, DeterministicAcrossLoads) {
  auto m1 = sn::load_model(7);
  auto m2 = sn::load_model(7);
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  auto speeds = tr::make_speed_observations(60.0, 1, 0.0, 4);
  std::vector<double> temp(96, 10.0), precip(96, 0.2);
  auto input = sn::make_input(speeds, temp, precip);
  auto p1 = sn::predict(*m1, input);
  auto p2 = sn::predict(*m2, input);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(*p1, *p2);
}

TEST(Speednet, InputValidation) {
  EXPECT_THROW(sn::make_input({1.0}, {2.0}, {3.0}), std::invalid_argument);
}

TEST(Ptdr, RouteChoicePicksFasterAlternative) {
  auto net = tr::make_grid_network(6, 1.0, 3);
  auto model = pt::make_model(net, 4);
  // A short route must beat a long one under any criterion.
  std::vector<pt::Route> alts{pt::make_route(net, 6, 7),
                              pt::make_route(net, 24, 7)};
  auto mean_pick = pt::choose_route(model, alts, 40, 3000, 5,
                                    pt::RoutingCriterion::MeanTime);
  auto p95_pick = pt::choose_route(model, alts, 40, 3000, 5,
                                   pt::RoutingCriterion::P95);
  ASSERT_TRUE(mean_pick.has_value());
  ASSERT_TRUE(p95_pick.has_value());
  EXPECT_EQ(mean_pick->route_index, 0u);
  EXPECT_EQ(p95_pick->route_index, 0u);
  EXPECT_GE(p95_pick->distribution.p95_min, p95_pick->distribution.p50_min);
}

TEST(Ptdr, RiskAverseCriterionCanDisagreeWithMean) {
  // Construct two synthetic single-segment models: route A slightly faster
  // on average but far riskier (high sigma); P95 must prefer B.
  tr::RoadNetwork net = tr::make_grid_network(1, 1.0, 1);
  pt::Model model = pt::make_model(net, 2);
  ASSERT_GE(model.segments.size(), 2u);
  for (int q = 0; q < pt::kIntervalsPerDay; ++q) {
    auto i = static_cast<std::size_t>(q);
    model.segments[0].mu[i] = std::log(52.0);  // fast but volatile
    model.segments[0].sigma[i] = 0.35;
    model.segments[1].mu[i] = std::log(48.0);  // slightly slower, steady
    model.segments[1].sigma[i] = 0.05;
  }
  std::vector<pt::Route> alts{pt::Route{{0}}, pt::Route{{1}}};
  auto mean_pick = pt::choose_route(model, alts, 0, 20000, 11,
                                    pt::RoutingCriterion::MeanTime);
  auto p95_pick = pt::choose_route(model, alts, 0, 20000, 11,
                                   pt::RoutingCriterion::P95);
  ASSERT_TRUE(mean_pick.has_value());
  ASSERT_TRUE(p95_pick.has_value());
  EXPECT_EQ(p95_pick->route_index, 1u);  // risk-averse picks the steady route
  EXPECT_NE(mean_pick->route_index, p95_pick->route_index);
}

TEST(Ptdr, RouteChoiceValidation) {
  auto net = tr::make_grid_network(3, 1.0, 3);
  auto model = pt::make_model(net, 4);
  EXPECT_FALSE(pt::choose_route(model, {}, 0, 100, 1).has_value());
}
