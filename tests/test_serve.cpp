// everest::serve tests: QoS primitives (token bucket, weighted-fair
// admission queue), the dynamic batcher policy, backend validation, and the
// end-to-end server — batching byte-identity across dispatcher/batch-size
// sweeps, tenant fairness, deadline and load shedding, and device failover.
// Labeled "concurrency" + "serving" so the tsan preset races the dispatcher
// threads against client submitters.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "frontend/condrust_parser.hpp"
#include "platform/fault_injector.hpp"
#include "platform/xrt.hpp"
#include "runtime/dfg_executor.hpp"
#include "sdk/basecamp.hpp"
#include "serve/backend.hpp"
#include "serve/batcher.hpp"
#include "serve/qos.hpp"
#include "serve/server.hpp"

namespace es = everest::serve;
namespace er = everest::runtime;
namespace ep = everest::platform;
namespace eh = everest::hls;
namespace eo = everest::obs;
namespace esup = everest::support;

namespace {

constexpr const char *kPipe = R"(
fn serve_pipe(xs: Stream<f64>) -> Stream<f64> {
    let scaled = mul2(xs);
    let biased = add1(scaled);
    return biased;
}
)";

std::shared_ptr<er::NodeRegistry> pipe_registry() {
  auto registry = std::make_shared<er::NodeRegistry>();
  registry->register_node("mul2",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v *= 2.0;
                            return out;
                          });
  registry->register_node("add1",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v += 1.0;
                            return out;
                          });
  return registry;
}

std::shared_ptr<const everest::ir::Module> pipe_graph() {
  auto parsed = everest::frontend::parse_condrust(kPipe);
  if (!parsed) {
    ADD_FAILURE() << parsed.error().message;
    return nullptr;
  }
  return *parsed;
}

es::PendingRequest make_pending(std::uint64_t id, const std::string &tenant,
                                int priority = 0, double admit_us = 0.0) {
  es::PendingRequest pending;
  pending.id = id;
  pending.request.tenant = tenant;
  pending.request.priority = priority;
  pending.request.inputs["xs"] = {static_cast<double>(id)};
  pending.admit_us = admit_us;
  return pending;
}

std::unique_ptr<es::Server> make_pipe_server(es::ServerOptions options,
                                             eo::TraceRecorder *recorder,
                                             er::DfgExecOptions exec = {}) {
  auto backend =
      es::DfgBackend::create(pipe_graph(), pipe_registry(), exec, recorder);
  EXPECT_TRUE(backend.has_value());
  std::vector<std::unique_ptr<es::Backend>> backends;
  backends.push_back(std::move(*backend));
  auto server = es::Server::create(std::move(backends), options, recorder);
  EXPECT_TRUE(server.has_value());
  return std::move(*server);
}

eh::KernelReport tiny_kernel(const std::string &name, std::int64_t cycles) {
  eh::KernelReport r;
  r.name = name;
  r.area = {10'000, 10'000, 10, 10};
  r.total_cycles = cycles;
  r.dataflow_cycles = cycles;
  return r;
}

}  // namespace

// ----------------------------------------------------------- token bucket

TEST(TokenBucket, EnforcesRateAndBurst) {
  es::TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0)) << "burst exhausted";
  EXPECT_FALSE(bucket.try_take(100'000.0)) << "0.2 tokens refilled, need 1";
  EXPECT_TRUE(bucket.try_take(500'000.0)) << "one token back after 500 ms";
  EXPECT_FALSE(bucket.try_take(500'000.0));
}

TEST(TokenBucket, NonPositiveRateIsUnlimited) {
  es::TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 1'000; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  es::TokenBucket bucket(1'000.0, 3.0);
  EXPECT_TRUE(bucket.try_take(0.0));
  // Hours of idle refill cannot exceed the burst.
  EXPECT_DOUBLE_EQ(bucket.available(3.6e9), 3.0);
}

// ------------------------------------------------------- admission queue

TEST(AdmissionQueue, WeightedFairDequeueIsDeterministic) {
  es::AdmissionQueue queue(16);
  es::TenantConfig heavy;
  heavy.weight = 2.0;
  queue.configure_tenant("a", heavy);  // b stays at weight 1
  std::uint64_t id = 1;
  for (int i = 0; i < 6; ++i) {
    auto pa = make_pending(id++, "a");
    ASSERT_TRUE(queue.admit(pa, 0.0).is_ok());
  }
  for (int i = 0; i < 3; ++i) {
    auto pb = make_pending(id++, "b");
    ASSERT_TRUE(queue.admit(pb, 0.0).is_ok());
  }
  // Stride scheduling at weights 2:1 serves a twice per b, ties broken by
  // name: a b a a b a a b a.
  std::string order;
  while (auto p = queue.pop(0.0)) order += p->request.tenant;
  EXPECT_EQ(order, "abaabaaba");
}

TEST(AdmissionQueue, IdleTenantDoesNotBankCredit) {
  es::AdmissionQueue queue(16);
  // b drains 4 requests while a is idle; a joining afterwards must resume
  // at the global virtual time, not replay its arrears.
  for (int i = 0; i < 4; ++i) {
    auto pb = make_pending(static_cast<std::uint64_t>(i), "b");
    ASSERT_TRUE(queue.admit(pb, 0.0).is_ok());
    queue.pop(0.0);
  }
  auto pa = make_pending(100, "a");
  auto pb = make_pending(101, "b");
  ASSERT_TRUE(queue.admit(pa, 0.0).is_ok());
  ASSERT_TRUE(queue.admit(pb, 0.0).is_ok());
  std::string order;
  while (auto p = queue.pop(0.0)) order += p->request.tenant;
  EXPECT_EQ(order, "ab") << "a is not owed 4 back-to-back pops";
}

TEST(AdmissionQueue, PriorityOrdersWithinTenantStably) {
  es::AdmissionQueue queue(16);
  auto p0 = make_pending(1, "t", /*priority=*/0);
  auto p5 = make_pending(2, "t", /*priority=*/5);
  auto p1 = make_pending(3, "t", /*priority=*/1);
  auto p5b = make_pending(4, "t", /*priority=*/5);
  for (auto *p : {&p0, &p5, &p1, &p5b}) {
    ASSERT_TRUE(queue.admit(*p, 0.0).is_ok());
  }
  std::vector<std::uint64_t> ids;
  while (auto p = queue.pop(0.0)) ids.push_back(p->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 4, 3, 1}));
}

TEST(AdmissionQueue, QueueBoundShedsWithUnavailable) {
  es::AdmissionQueue queue(/*default_bound=*/2);
  auto p1 = make_pending(1, "t");
  auto p2 = make_pending(2, "t");
  auto p3 = make_pending(3, "t");
  ASSERT_TRUE(queue.admit(p1, 0.0).is_ok());
  ASSERT_TRUE(queue.admit(p2, 0.0).is_ok());
  es::ShedReason reason = es::ShedReason::None;
  auto shed = queue.admit(p3, 0.0, &reason);
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.error().code_enum(), esup::ErrorCode::Unavailable);
  EXPECT_EQ(reason, es::ShedReason::QueueBound);
  // The shed request still owns its promise (caller reports the error).
  EXPECT_EQ(p3.request.tenant, "t");
  EXPECT_EQ(queue.size(), 2u);
}

TEST(AdmissionQueue, RateLimitShedsWithUnavailable) {
  es::AdmissionQueue queue(16);
  es::TenantConfig limited;
  limited.rate_per_s = 1e-9;  // effectively never refills
  limited.burst = 2.0;
  queue.configure_tenant("t", limited);
  auto p1 = make_pending(1, "t");
  auto p2 = make_pending(2, "t");
  auto p3 = make_pending(3, "t");
  ASSERT_TRUE(queue.admit(p1, 0.0).is_ok());
  ASSERT_TRUE(queue.admit(p2, 0.0).is_ok());
  es::ShedReason reason = es::ShedReason::None;
  auto shed = queue.admit(p3, 0.0, &reason);
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.error().code_enum(), esup::ErrorCode::Unavailable);
  EXPECT_EQ(reason, es::ShedReason::RateLimit);
}

// ------------------------------------------------------------- batcher

TEST(DynamicBatcher, DispatchPolicy) {
  es::DynamicBatcher batcher({/*max_batch=*/4, /*max_wait_us=*/100.0});
  EXPECT_FALSE(batcher.should_dispatch(0, 0.0, 1e9, false)) << "empty queue";
  EXPECT_TRUE(batcher.should_dispatch(4, 0.0, 0.0, false)) << "batch full";
  EXPECT_TRUE(batcher.should_dispatch(7, 0.0, 0.0, false));
  EXPECT_FALSE(batcher.should_dispatch(2, 50.0, 100.0, false))
      << "oldest waited 50 us of its 100 us budget";
  EXPECT_TRUE(batcher.should_dispatch(2, 50.0, 150.0, false))
      << "oldest aged out";
  EXPECT_TRUE(batcher.should_dispatch(1, 0.0, 0.0, true)) << "draining";
  EXPECT_DOUBLE_EQ(batcher.wait_budget_us(50.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(batcher.wait_budget_us(0.0, 500.0), 0.0);
}

// ------------------------------------------------------------- backends

TEST(DfgBackend, ServesFoldGraphsPerRequest) {
  // A fold collapses its stream, so a concatenated batch would fuse the
  // requests' data into one fold state. The backend must instead run fold
  // graphs per request and return batch-ordered, batch-length outputs that
  // are byte-identical to unbatched execution.
  auto parsed = everest::frontend::parse_condrust(R"(
fn agg(xs: Stream<f64>) -> Stream<f64> {
    let doubled = mul2(xs);
    let total = fold acc(doubled);
    return total;
}
)");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  auto registry = pipe_registry();
  registry->register_fold("acc", {10.0},
                          [](const er::Record &state,
                             const std::vector<const er::Record *> &in) {
                            return er::Record{state[0] + in.at(0)->at(0)};
                          });
  auto backend = es::DfgBackend::create(*parsed, registry);
  ASSERT_TRUE(backend.has_value()) << backend.error().message;

  er::Stream batch;
  for (int i = 0; i < 5; ++i) batch.push_back({static_cast<double>(i)});
  auto batched = (*backend)->run_batch({{"xs", batch}});
  ASSERT_TRUE(batched.has_value()) << batched.error().message;
  ASSERT_EQ(batched->at("total").size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Each request folds only its own record from the initial state.
    er::Record expected{10.0 + 2.0 * batch[i][0]};
    EXPECT_EQ(batched->at("total")[i], expected) << "request " << i;
    auto single = (*backend)->run_batch({{"xs", er::Stream{batch[i]}}});
    ASSERT_TRUE(single.has_value());
    EXPECT_EQ(single->at("total").front(), batched->at("total")[i])
        << "batched result diverged from unbatched, request " << i;
  }
}

TEST(DfgBackend, RejectsUnregisteredFoldCallees) {
  auto parsed = everest::frontend::parse_condrust(R"(
fn agg(xs: Stream<f64>) -> Stream<f64> {
    let total = fold acc(xs);
    return total;
}
)");
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  auto backend = es::DfgBackend::create(*parsed, pipe_registry());
  ASSERT_FALSE(backend.has_value());
  EXPECT_EQ(backend.error().code_enum(), esup::ErrorCode::NotFound);
}

TEST(DfgBackend, RejectsUnregisteredCallees) {
  auto backend =
      es::DfgBackend::create(pipe_graph(), std::make_shared<er::NodeRegistry>());
  ASSERT_FALSE(backend.has_value());
  EXPECT_EQ(backend.error().code_enum(), esup::ErrorCode::NotFound);
}

TEST(DfgBackend, ExposesInputNames) {
  auto backend = es::DfgBackend::create(pipe_graph(), pipe_registry());
  ASSERT_TRUE(backend.has_value());
  EXPECT_EQ((*backend)->input_names(), std::vector<std::string>{"xs"});
}

// ------------------------------------------------------------- server

TEST(Server, BatchedOutputsAreByteIdenticalAcrossConfigs) {
  auto graph = pipe_graph();
  auto registry = pipe_registry();
  const int kRequests = 24;

  // Reference: unbatched single-request executions.
  std::vector<er::Record> reference;
  for (int i = 0; i < kRequests; ++i) {
    std::map<std::string, er::Stream> single;
    single["xs"] = {{static_cast<double>(i), i * 0.25, -i * 3.5}};
    auto direct = er::execute_dfg(*graph, *registry, single, 1);
    ASSERT_TRUE(direct.has_value());
    reference.push_back(direct->at("biased").at(0));
  }

  for (int dispatchers : {1, 2, 4}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}}) {
      es::ServerOptions options;
      options.dispatchers = dispatchers;
      options.batch.max_batch = max_batch;
      options.batch.max_wait_us = 100.0;
      auto server = make_pipe_server(options, nullptr);
      server->start();
      std::vector<std::future<es::Response>> futures;
      for (int i = 0; i < kRequests; ++i) {
        es::Request req;
        req.tenant = i % 2 == 0 ? "even" : "odd";
        req.inputs["xs"] = {static_cast<double>(i), i * 0.25, -i * 3.5};
        auto submitted = server->submit(std::move(req));
        ASSERT_TRUE(submitted.has_value());
        futures.push_back(std::move(*submitted));
      }
      server->drain();
      for (int i = 0; i < kRequests; ++i) {
        es::Response response = futures[static_cast<std::size_t>(i)].get();
        ASSERT_TRUE(response.status.is_ok()) << response.status.message();
        ASSERT_EQ(response.outputs.count("biased"), 1u);
        EXPECT_EQ(response.outputs.at("biased"),
                  reference[static_cast<std::size_t>(i)])
            << "request " << i << " dispatchers " << dispatchers
            << " max_batch " << max_batch;
        EXPECT_EQ(response.backend, "host-cpu");
        EXPECT_FALSE(response.degraded);
      }
      server->stop();
    }
  }
}

TEST(Server, CoalescesQueuedRequestsIntoBatches) {
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 4;
  auto server = make_pipe_server(options, nullptr);
  // Queue everything before starting the dispatcher: the batcher must then
  // cut ceil(10/4) = 3 batches deterministically.
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 10; ++i) {
    es::Request req;
    req.inputs["xs"] = {static_cast<double>(i)};
    auto submitted = server->submit(std::move(req));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  server->start();
  server->drain();
  std::map<std::uint64_t, std::size_t> batch_sizes;
  for (auto &future : futures) {
    es::Response response = future.get();
    ASSERT_TRUE(response.status.is_ok());
    batch_sizes[response.batch_id] = response.batch_size;
  }
  auto stats = server->stats();
  EXPECT_EQ(stats.batches, 3);
  EXPECT_EQ(batch_sizes.size(), 3u);
  std::size_t total = 0;
  for (const auto &[id, size] : batch_sizes) {
    EXPECT_LE(size, 4u);
    total += size;
  }
  // Batch sizes from the per-response view must cover all 10 requests
  // (4 + 4 + 2).
  EXPECT_EQ(stats.batch_size.max(), 4.0);
  EXPECT_EQ(stats.completed, 10);
}

TEST(Server, WeightedFairShareAcrossTenantsWithinBatches) {
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 4;
  auto server = make_pipe_server(options, nullptr);
  // 8 requests per tenant, queued before the dispatcher starts: every batch
  // of 4 must carry 2 of each tenant (equal weights alternate a,b,a,b).
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 8; ++i) {
    for (const char *tenant : {"a", "b"}) {
      es::Request req;
      req.tenant = tenant;
      req.inputs["xs"] = {static_cast<double>(i)};
      auto submitted = server->submit(std::move(req));
      ASSERT_TRUE(submitted.has_value());
      futures.push_back(std::move(*submitted));
    }
  }
  server->start();
  server->drain();
  std::map<std::uint64_t, std::map<std::string, int>> batch_tenants;
  for (auto &future : futures) {
    es::Response response = future.get();
    ASSERT_TRUE(response.status.is_ok());
    ++batch_tenants[response.batch_id][response.tenant];
  }
  ASSERT_EQ(batch_tenants.size(), 4u);
  for (const auto &[id, counts] : batch_tenants) {
    EXPECT_EQ(counts.at("a"), 2) << "batch " << id;
    EXPECT_EQ(counts.at("b"), 2) << "batch " << id;
  }
}

TEST(Server, ExpiredDeadlinesAreShedNotExecuted) {
  eo::TraceRecorder recorder;
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 8;
  auto server = make_pipe_server(options, &recorder);
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 4; ++i) {
    es::Request req;
    req.inputs["xs"] = {static_cast<double>(i)};
    // Absolute deadline 0 on the server clock: already in the past by the
    // time any dispatcher sees it.
    if (i % 2 == 0) req.deadline_us = 0.0;
    auto submitted = server->submit(std::move(req));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  server->start();
  server->drain();
  int shed = 0, served = 0;
  for (auto &future : futures) {
    es::Response response = future.get();
    if (response.status.is_ok()) {
      ++served;
    } else {
      EXPECT_EQ(response.status.error().code_enum(),
                esup::ErrorCode::DeadlineExceeded);
      ++shed;
    }
  }
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(server->stats().shed_deadline, 2);
}

TEST(Server, QueueBoundShedsAtAdmission) {
  es::ServerOptions options;
  options.queue_bound = 2;
  auto server = make_pipe_server(options, nullptr);
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 3; ++i) {
    es::Request req;
    req.inputs["xs"] = {static_cast<double>(i)};
    auto submitted = server->submit(std::move(req));
    if (i < 2) {
      ASSERT_TRUE(submitted.has_value());
      futures.push_back(std::move(*submitted));
    } else {
      ASSERT_FALSE(submitted.has_value());
      EXPECT_EQ(submitted.error().code_enum(), esup::ErrorCode::Unavailable);
    }
  }
  server->start();
  server->drain();
  for (auto &future : futures) {
    EXPECT_TRUE(future.get().status.is_ok());
  }
  auto stats = server->stats();
  EXPECT_EQ(stats.shed_queue, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(Server, RateLimitShedsAtAdmission) {
  es::ServerOptions options;
  es::TenantConfig limited;
  limited.rate_per_s = 1e-9;
  limited.burst = 2.0;
  options.tenants["t"] = limited;
  auto server = make_pipe_server(options, nullptr);
  int shed = 0;
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 5; ++i) {
    es::Request req;
    req.tenant = "t";
    req.inputs["xs"] = {1.0};
    auto submitted = server->submit(std::move(req));
    if (submitted.has_value()) {
      futures.push_back(std::move(*submitted));
    } else {
      EXPECT_EQ(submitted.error().code_enum(), esup::ErrorCode::Unavailable);
      ++shed;
    }
  }
  EXPECT_EQ(shed, 3) << "burst of 2, then rate-limited";
  server->start();
  server->drain();
  EXPECT_EQ(server->stats().shed_rate, 3);
}

TEST(Server, RejectsRequestsWithWrongInputs) {
  auto server = make_pipe_server({}, nullptr);
  es::Request missing;
  auto r1 = server->submit(missing);
  ASSERT_FALSE(r1.has_value());
  EXPECT_EQ(r1.error().code_enum(), esup::ErrorCode::InvalidArgument);
  es::Request wrong;
  wrong.inputs["ys"] = {1.0};
  auto r2 = server->submit(wrong);
  ASSERT_FALSE(r2.has_value());
  EXPECT_EQ(r2.error().code_enum(), esup::ErrorCode::InvalidArgument);
}

TEST(Server, ConcurrentSubmittersAllComplete) {
  es::ServerOptions options;
  options.dispatchers = 4;
  options.batch.max_batch = 8;
  options.batch.max_wait_us = 50.0;
  auto server = make_pipe_server(options, nullptr);
  server->start();
  const int kThreads = 4, kPerThread = 32;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<es::Response>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        es::Request req;
        req.tenant = "client-" + std::to_string(t);
        req.inputs["xs"] = {static_cast<double>(t), static_cast<double>(i)};
        auto submitted = server->submit(std::move(req));
        ASSERT_TRUE(submitted.has_value());
        futures[static_cast<std::size_t>(t)].push_back(std::move(*submitted));
      }
    });
  }
  for (auto &c : clients) c.join();
  server->drain();
  for (int t = 0; t < kThreads; ++t) {
    for (auto &future : futures[static_cast<std::size_t>(t)]) {
      es::Response response = future.get();
      ASSERT_TRUE(response.status.is_ok());
      // mul2 then add1: [t, i] -> [2t + 1, 2i + 1].
      ASSERT_EQ(response.outputs.at("biased").size(), 2u);
    }
  }
  auto stats = server->stats();
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.failed, 0);
}

TEST(Server, DeviceFaultsFailOverToHostCpu) {
  eo::TraceRecorder recorder;
  ep::Device device(ep::alveo_u55c());
  ASSERT_TRUE(
      device.load_kernel("serve_pipe", tiny_kernel("serve_pipe", 3'000))
          .is_ok());
  ep::FaultPlan plan;
  plan.kernel_timeout_rate = 1.0;  // every launch hangs
  plan.kernel_timeout_multiplier = 100.0;
  ep::FaultInjector injector(11, plan);
  device.attach_fault_injector(&injector);

  auto fpga_compute = es::DfgBackend::create(pipe_graph(), pipe_registry());
  ASSERT_TRUE(fpga_compute.has_value());
  auto fpga = es::DeviceBackend::create(&device, "serve_pipe",
                                        std::move(*fpga_compute),
                                        /*launch_deadline_us=*/50.0);
  ASSERT_TRUE(fpga.has_value());
  auto host = es::DfgBackend::create(pipe_graph(), pipe_registry());
  ASSERT_TRUE(host.has_value());
  std::vector<std::unique_ptr<es::Backend>> backends;
  backends.push_back(std::move(*fpga));
  backends.push_back(std::move(*host));

  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 4;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_us = 1.0;
  options.breaker.failure_threshold = 1;
  options.breaker.open_us = 1e12;  // stays open for the whole test
  auto server = es::Server::create(std::move(backends), options, &recorder);
  ASSERT_TRUE(server.has_value());

  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 8; ++i) {
    es::Request req;
    req.inputs["xs"] = {static_cast<double>(i)};
    auto submitted = (*server)->submit(std::move(req));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  (*server)->start();
  (*server)->drain();
  for (auto &future : futures) {
    es::Response response = future.get();
    ASSERT_TRUE(response.status.is_ok()) << response.status.message();
    EXPECT_EQ(response.backend, "host-cpu");
    EXPECT_TRUE(response.degraded) << "served by the failover backend";
  }
  auto stats = (*server)->stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_GE(stats.failovers, 1);
  // The first batch trips the breaker (threshold 1); later batches are
  // rejected at the breaker instead of burning device retries.
  EXPECT_GE(stats.breaker_rejections, 1);
  (*server)->stop();
}

TEST(Server, StopFailsQueuedRequestsCleanly) {
  auto server = make_pipe_server({}, nullptr);
  es::Request req;
  req.inputs["xs"] = {1.0};
  auto submitted = server->submit(std::move(req));
  ASSERT_TRUE(submitted.has_value());
  server->stop();  // never started: the queued request must not dangle
  es::Response response = submitted->get();
  ASSERT_FALSE(response.status.is_ok());
  EXPECT_EQ(response.status.error().code_enum(),
            esup::ErrorCode::Unavailable);
  auto rejected = server->submit(es::Request{});
  EXPECT_FALSE(rejected.has_value());
}

// ------------------------------------------------------------- basecamp

TEST(Basecamp, MakeServerServesWithDeviceAndRecordsMetrics) {
  everest::sdk::Basecamp basecamp;
  ep::Device device(ep::alveo_u55c());
  device.attach_recorder(&basecamp.recorder());
  ASSERT_TRUE(
      device.load_kernel("serve_pipe", tiny_kernel("serve_pipe", 2'000))
          .is_ok());
  es::ServerOptions options;
  options.batch.max_batch = 4;
  options.dispatchers = 2;
  auto server = basecamp.make_server(pipe_graph(), pipe_registry(), options,
                                     &device, "serve_pipe");
  ASSERT_TRUE(server.has_value()) << server.error().message;
  ASSERT_EQ((*server)->backends().size(), 2u);
  EXPECT_EQ((*server)->backends()[0]->name(), "alveo-u55c");
  EXPECT_EQ((*server)->backends()[1]->name(), "host-cpu");
  (*server)->start();
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 12; ++i) {
    es::Request req;
    req.tenant = i % 3 == 0 ? "gold" : "free";
    req.inputs["xs"] = {static_cast<double>(i)};
    auto submitted = (*server)->submit(std::move(req));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  (*server)->drain();
  for (auto &future : futures) {
    es::Response response = future.get();
    ASSERT_TRUE(response.status.is_ok());
    EXPECT_EQ(response.backend, "alveo-u55c");
    EXPECT_FALSE(response.degraded);
  }
  (*server)->stop();
  // serve.* metrics and batch spans landed on the basecamp recorder.
  bool found_batches = false, found_latency = false, found_span = false;
  for (const auto &[name, value] : basecamp.recorder().counters()) {
    if (name == "serve.batches") found_batches = value > 0;
  }
  for (const auto &[name, summary] : basecamp.recorder().histograms()) {
    if (name == "serve.latency_us.gold") found_latency = summary.count == 4;
  }
  for (const auto &event : basecamp.recorder().events()) {
    if (event.category == "serve.batch") found_span = true;
  }
  EXPECT_TRUE(found_batches);
  EXPECT_TRUE(found_latency);
  EXPECT_TRUE(found_span);
  EXPECT_GT(device.stats().kernel_launches, 0);
}

TEST(Basecamp, MakeServerServesFoldGraphs) {
  everest::sdk::Basecamp basecamp;
  auto parsed = everest::frontend::parse_condrust(R"(
fn agg(xs: Stream<f64>) -> Stream<f64> {
    let total = fold acc(xs);
    return total;
}
)");
  ASSERT_TRUE(parsed.has_value());
  auto registry = pipe_registry();
  registry->register_fold("acc", {0.0},
                          [](const er::Record &state,
                             const std::vector<const er::Record *> &in) {
                            return er::Record{state[0] + in.at(0)->at(0)};
                          });
  es::ServerOptions options;
  options.batch.max_batch = 4;
  auto server = basecamp.make_server(*parsed, registry, options);
  ASSERT_TRUE(server.has_value()) << server.error().message;
  (*server)->start();
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 8; ++i) {
    es::Request req;
    req.inputs["xs"] = {static_cast<double>(i)};
    auto submitted = (*server)->submit(std::move(req));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  (*server)->drain();
  for (int i = 0; i < 8; ++i) {
    es::Response response = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(response.status.is_ok()) << response.status.error().message;
    // Batching must not fuse fold states across requests.
    EXPECT_EQ(response.outputs.at("total"),
              er::Record{static_cast<double>(i)});
  }
  (*server)->stop();
}

// ------------------------------------------------- satellite regressions

// The queue's oldest-admit / earliest-deadline views are maintained as
// running minima by admit()/pop(). Differential check against shadow
// multisets across a deterministic interleaving of admits and pops.
TEST(AdmissionQueue, RunningMinimaMatchShadowAccounting) {
  es::AdmissionQueue queue(256);
  std::multiset<double> admits;
  std::multiset<double> deadlines;
  auto check = [&] {
    EXPECT_EQ(queue.oldest_admit_us(),
              admits.empty() ? 0.0 : *admits.begin());
    EXPECT_EQ(queue.earliest_deadline_us(),
              deadlines.empty() ? -1.0 : *deadlines.begin());
  };
  std::uint64_t lcg = 42;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((lcg >> 33) % 10'000);
  };
  double now = 0.0;
  for (int round = 0; round < 200; ++round) {
    now += 1.0;
    if (round % 3 != 2) {
      auto pending =
          make_pending(static_cast<std::uint64_t>(round),
                       "tenant-" + std::to_string(round % 5), round % 3, now);
      // Roughly half the requests carry a deadline.
      pending.request.deadline_us = round % 2 == 0 ? now + next() : -1.0;
      double admit_us = pending.admit_us;
      double deadline_us = pending.request.deadline_us;
      ASSERT_TRUE(queue.admit(pending, now).is_ok());
      admits.insert(admit_us);
      if (deadline_us >= 0.0) deadlines.insert(deadline_us);
    } else {
      auto popped = queue.pop(now);
      if (popped.has_value()) {
        admits.erase(admits.find(popped->admit_us));
        if (popped->request.deadline_us >= 0.0)
          deadlines.erase(deadlines.find(popped->request.deadline_us));
      }
    }
    check();
  }
  while (auto popped = queue.pop(now)) {
    admits.erase(admits.find(popped->admit_us));
    if (popped->request.deadline_us >= 0.0)
      deadlines.erase(deadlines.find(popped->request.deadline_us));
    check();
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.oldest_admit_us(), 0.0);
  EXPECT_EQ(queue.earliest_deadline_us(), -1.0);
}

TEST(DynamicBatcher, DeadlineCapsWaitBudgetAndForcesDispatch) {
  es::DynamicBatcher batcher({/*max_batch=*/8, /*max_wait_us=*/100.0});
  // A pending deadline already in the past forces an immediate cut even
  // though neither the batch is full nor the oldest request aged out.
  EXPECT_TRUE(batcher.should_dispatch(1, /*oldest=*/0.0, /*now=*/10.0,
                                      /*draining=*/false,
                                      /*earliest_deadline_us=*/5.0));
  // A future deadline does not dispatch early...
  EXPECT_FALSE(batcher.should_dispatch(1, 0.0, 10.0, false, 50.0));
  // ...but it caps the wait budget: 30 us to the deadline beats the 90 us
  // left on the batch-age budget.
  EXPECT_EQ(batcher.wait_budget_us(0.0, 10.0, 40.0), 30.0);
  // No deadline pending: the full batch-age budget applies.
  EXPECT_EQ(batcher.wait_budget_us(0.0, 10.0, -1.0), 90.0);
  EXPECT_EQ(batcher.wait_budget_us(0.0, 10.0), 90.0);
  // Expired deadline: never sleep on it.
  EXPECT_EQ(batcher.wait_budget_us(0.0, 10.0, 5.0), 0.0);
}

// Regression: with a huge max_wait_us and a non-full batch, an expired
// deadline must still be shed eagerly. Before the earliest-deadline cap the
// dispatcher would sleep out the full batch-age budget (5 s here) with the
// expired request stuck in the queue.
TEST(Server, ExpiredDeadlineIsShedEagerlyNotAfterMaxWait) {
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 64;
  options.batch.max_wait_us = 5e6;  // 5 s: far beyond the test's patience
  auto server = make_pipe_server(options, nullptr);
  server->start();
  es::Request req;
  req.inputs["xs"] = {1.0};
  req.deadline_us = 0.0;  // already expired on the server clock
  auto submitted = server->submit(std::move(req));
  ASSERT_TRUE(submitted.has_value());
  ASSERT_EQ(submitted->wait_for(std::chrono::seconds(2)),
            std::future_status::ready)
      << "expired request sat in the queue behind the batch-age budget";
  es::Response response = submitted->get();
  ASSERT_FALSE(response.status.is_ok());
  EXPECT_EQ(response.status.error().code_enum(),
            esup::ErrorCode::DeadlineExceeded);
  server->stop();
}

namespace {

// Backend that blocks inside run_batch until released; used to hold a batch
// in flight while a drain is pending.
class GatedEchoBackend final : public es::Backend {
public:
  [[nodiscard]] const std::string &name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string> &input_names() const override {
    return inputs_;
  }

  esup::Expected<std::map<std::string, er::Stream>> run_batch(
      const std::map<std::string, er::Stream> &inputs) override {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    released_cv_.wait(lock, [this] { return released_; });
    return inputs;
  }

  void wait_entered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    released_cv_.notify_all();
  }

private:
  std::string name_ = "gated-echo";
  std::vector<std::string> inputs_{"xs"};
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable released_cv_;
  bool entered_ = false;
  bool released_ = false;
};

}  // namespace

// Regression: submits racing a drain() must be shed with Unavailable. Before
// the draining_ check in submit(), a sustained submitter could keep the
// queue non-empty forever and livelock the drain; racing admits during the
// flush were also silently accepted and then flushed, making drain()'s
// completion point meaningless.
TEST(Server, SubmitDuringDrainIsShedWithUnavailable) {
  auto gated = std::make_unique<GatedEchoBackend>();
  GatedEchoBackend *gate = gated.get();
  std::vector<std::unique_ptr<es::Backend>> backends;
  backends.push_back(std::move(gated));
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 1;
  auto server = es::Server::create(std::move(backends), options, nullptr);
  ASSERT_TRUE(server.has_value());
  (*server)->start();

  es::Request first;
  first.inputs["xs"] = {1.0};
  auto in_flight = (*server)->submit(std::move(first));
  ASSERT_TRUE(in_flight.has_value());
  gate->wait_entered();  // the batch is now stuck inside the backend

  std::thread drainer([&] { (*server)->drain(); });
  // The drain is blocked on the in-flight batch; concurrent submits must be
  // shed with Unavailable instead of queueing behind the drain.
  bool shed_during_drain = false;
  for (int i = 0; i < 5'000 && !shed_during_drain; ++i) {
    es::Request racing;
    racing.inputs["xs"] = {2.0};
    auto submitted = (*server)->submit(std::move(racing));
    if (!submitted.has_value()) {
      EXPECT_EQ(submitted.error().code_enum(), esup::ErrorCode::Unavailable);
      EXPECT_NE(submitted.error().message.find("drain"), std::string::npos);
      shed_during_drain = true;
    } else {
      // Raced ahead of the drain flag: the request was admitted and will be
      // flushed by the drain.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(shed_during_drain);
  gate->release();
  drainer.join();
  EXPECT_TRUE(in_flight->get().status.is_ok());
  EXPECT_GE((*server)->stats().shed_drain, 1);
  (*server)->stop();
}

namespace {

// Backend that returns streams one element short of the batch — the
// wrong-length contract violation the Server must treat as a failure.
class TruncatingBackend final : public es::Backend {
public:
  [[nodiscard]] const std::string &name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string> &input_names() const override {
    return inputs_;
  }

  esup::Expected<std::map<std::string, er::Stream>> run_batch(
      const std::map<std::string, er::Stream> &inputs) override {
    ++calls;
    std::map<std::string, er::Stream> out = inputs;
    for (auto &[key, stream] : out)
      if (!stream.empty()) stream.pop_back();
    return out;
  }

  int calls = 0;

private:
  std::string name_ = "truncating";
  std::vector<std::string> inputs_{"xs"};
};

}  // namespace

// Regression: a backend returning wrong-length streams previously failed the
// batch over to the next backend WITHOUT tripping its circuit breaker, so a
// persistently malformed backend was retried first on every single batch.
TEST(Server, MalformedBackendTripsItsBreaker) {
  auto truncating = std::make_unique<TruncatingBackend>();
  TruncatingBackend *malformed = truncating.get();
  auto host = es::DfgBackend::create(pipe_graph(), pipe_registry(), {}, nullptr);
  ASSERT_TRUE(host.has_value());
  std::vector<std::unique_ptr<es::Backend>> backends;
  backends.push_back(std::move(truncating));
  backends.push_back(std::move(*host));
  es::ServerOptions options;
  options.dispatchers = 1;
  options.batch.max_batch = 2;
  options.breaker.failure_threshold = 1;
  options.breaker.open_us = 1e12;  // stays open for the rest of the test
  auto server = es::Server::create(std::move(backends), options, nullptr);
  ASSERT_TRUE(server.has_value());

  auto run_batch_of_two = [&] {
    std::vector<std::future<es::Response>> futures;
    for (int i = 0; i < 2; ++i) {
      es::Request req;
      req.inputs["xs"] = {static_cast<double>(i)};
      auto submitted = (*server)->submit(std::move(req));
      ASSERT_TRUE(submitted.has_value());
      futures.push_back(std::move(*submitted));
    }
    (*server)->start();
    (*server)->drain();
    for (auto &future : futures) {
      es::Response response = future.get();
      ASSERT_TRUE(response.status.is_ok());
      EXPECT_EQ(response.backend, "host-cpu") << "must fail over";
      EXPECT_TRUE(response.degraded);
    }
  };

  run_batch_of_two();
  EXPECT_EQ(malformed->calls, 1);
  run_batch_of_two();
  // The breaker tripped by the malformed first batch must have skipped the
  // backend entirely on the second one.
  EXPECT_EQ(malformed->calls, 1);
  auto stats = (*server)->stats();
  EXPECT_GE(stats.breaker_rejections, 1);
  EXPECT_EQ(stats.completed, 4);
}

// Regression guard: a tenant configured with burst < 1 must still be able to
// admit one request at a time — the burst is clamped to >= 1 at
// configure_tenant (and defensively in TokenBucket itself). An unclamped
// sub-1 burst could never accumulate a whole token, permanently shedding the
// tenant.
TEST(Server, ConfigureTenantClampsSubUnityBurst) {
  es::ServerOptions options;
  es::TenantConfig tiny;
  tiny.rate_per_s = 1e-9;  // effectively no refill within the test
  tiny.burst = 0.25;
  options.tenants["t"] = tiny;
  auto server = make_pipe_server(options, nullptr);
  es::Request first;
  first.tenant = "t";
  first.inputs["xs"] = {1.0};
  auto a = server->submit(std::move(first));
  ASSERT_TRUE(a.has_value()) << "burst must clamp to 1, not shed forever";
  es::Request second;
  second.tenant = "t";
  second.inputs["xs"] = {2.0};
  auto b = server->submit(std::move(second));
  ASSERT_FALSE(b.has_value()) << "exactly one token at burst 1";
  EXPECT_EQ(b.error().code_enum(), esup::ErrorCode::Unavailable);
  server->start();
  server->drain();
  EXPECT_TRUE(a->get().status.is_ok());
}
