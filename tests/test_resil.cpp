// Tests for deterministic fault injection and the resilience policies that
// recover from it: the platform::FaultInjector oracle, coded retryable
// errors from the device/network models, retry/backoff, deadlines, circuit
// breakers, device failover, checkpointed dfg restart — and the acceptance
// property that a faulted run under a fixed seed is bit-reproducible
// (identical traces, identical outputs) while still completing correctly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/condrust_parser.hpp"
#include "hls/scheduler.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "platform/fault_injector.hpp"
#include "platform/network.hpp"
#include "platform/xrt.hpp"
#include "resil/failover.hpp"
#include "resil/fault.hpp"
#include "resil/policy.hpp"
#include "runtime/dfg_executor.hpp"
#include "runtime/resource_manager.hpp"
#include "sdk/basecamp.hpp"
#include "support/expected.hpp"
#include "usecases/rrtmg.hpp"

namespace ef = everest::frontend;
namespace eh = everest::hls;
namespace eo = everest::obs;
namespace ep = everest::platform;
namespace er = everest::runtime;
namespace es = everest::sdk;
namespace rr = everest::usecases::rrtmg;
namespace rs = everest::resil;
namespace su = everest::support;

namespace {

/// A small kernel report that fits comfortably on any device model.
eh::KernelReport tiny_kernel(const std::string &name, std::int64_t cycles) {
  eh::KernelReport r;
  r.name = name;
  r.area = {10'000, 10'000, 10, 10};
  r.total_cycles = cycles;
  r.dataflow_cycles = cycles;
  return r;
}

}  // namespace

// ------------------------------------------------------------ fault oracle

TEST(FaultInjector, DecideIsPureInSeedSiteOpAndSalt) {
  ep::FaultPlan plan;
  plan.transfer_error_rate = 0.3;
  plan.node_fault_rate = 0.3;
  ep::FaultInjector a(42, plan);
  ep::FaultInjector b(42, plan);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.decide(ep::FaultSite::DmaToDevice, i),
              b.decide(ep::FaultSite::DmaToDevice, i));
    EXPECT_EQ(a.decide(ep::FaultSite::NodeInvoke, i, 7),
              b.decide(ep::FaultSite::NodeInvoke, i, 7));
    // decide() is const and repeatable.
    EXPECT_EQ(a.decide(ep::FaultSite::DmaToDevice, i),
              a.decide(ep::FaultSite::DmaToDevice, i));
  }
  // A different seed draws a different decision stream.
  ep::FaultInjector c(43, plan);
  int diffs = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    diffs += a.decide(ep::FaultSite::DmaToDevice, i) !=
             c.decide(ep::FaultSite::DmaToDevice, i);
  }
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, RatesBoundTheDecisionFrequency) {
  ep::FaultPlan zero;
  ep::FaultPlan always;
  always.transfer_error_rate = 1.0;
  ep::FaultInjector never(1, zero);
  ep::FaultInjector certain(1, always);
  ep::FaultPlan third;
  third.transfer_error_rate = 0.3;
  ep::FaultInjector sometimes(1, third);
  int hits = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_EQ(never.decide(ep::FaultSite::DmaToDevice, i),
              ep::InjectedFault::None);
    EXPECT_EQ(certain.decide(ep::FaultSite::DmaToDevice, i),
              ep::InjectedFault::TransferError);
    hits += sometimes.decide(ep::FaultSite::DmaToDevice, i) !=
            ep::InjectedFault::None;
  }
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(FaultInjector, NextAdvancesCountersAndTallies) {
  ep::FaultPlan plan;
  plan.alloc_flake_rate = 1.0;
  eo::TraceRecorder recorder;
  ep::FaultInjector inj(7, plan);
  inj.attach_recorder(&recorder);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(inj.next(ep::FaultSite::Alloc), ep::InjectedFault::AllocFlake);
  EXPECT_EQ(inj.injected(ep::InjectedFault::AllocFlake), 3);
  EXPECT_EQ(inj.injected_total(), 3);
  auto counts = inj.injected_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("alloc-flake"), 3);
  EXPECT_EQ(recorder.counter("resil.fault.alloc-flake").value(), 3);
}

TEST(FaultPlan, ParseAcceptsFullSpec) {
  auto plan = ep::parse_fault_plan(
      "transfer=0.1,alloc=0.2,timeout=0.3,timeout-mult=4,drop=0.05,"
      "spike=0.1,spike-mult=12,node=0.25,fold=0.15");
  ASSERT_TRUE(plan.has_value()) << plan.error().message;
  EXPECT_DOUBLE_EQ(plan->transfer_error_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->alloc_flake_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan->kernel_timeout_rate, 0.3);
  EXPECT_DOUBLE_EQ(plan->kernel_timeout_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(plan->link_drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->link_spike_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->link_spike_multiplier, 12.0);
  EXPECT_DOUBLE_EQ(plan->node_fault_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan->fold_fault_rate, 0.15);
  // Empty spec is the all-zero default plan.
  auto empty = ep::parse_fault_plan("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_DOUBLE_EQ(empty->transfer_error_rate, 0.0);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ep::parse_fault_plan("bogus=0.5").has_value());
  EXPECT_FALSE(ep::parse_fault_plan("transfer").has_value());
  EXPECT_FALSE(ep::parse_fault_plan("transfer=abc").has_value());
  EXPECT_FALSE(ep::parse_fault_plan("transfer=1.5").has_value());
  EXPECT_FALSE(ep::parse_fault_plan("timeout-mult=0.5").has_value());
  EXPECT_FALSE(ep::parse_fault_plan("drop=0.7,spike=0.6").has_value());
  for (const auto &bad : {"bogus=0.5", "transfer=1.5"}) {
    EXPECT_EQ(ep::parse_fault_plan(bad).error().code_enum(),
              su::ErrorCode::InvalidArgument);
  }
}

// ----------------------------------------------------------- device faults

TEST(DeviceFaults, AllocReportsRequestedVsAvailable) {
  ep::Device dev(ep::alveo_u55c());
  auto bo = dev.alloc(100LL * 1024 * 1024 * 1024);  // 100 GB > 16 GB HBM
  ASSERT_FALSE(bo.has_value());
  EXPECT_EQ(bo.error().code_enum(), su::ErrorCode::ResourceExhausted);
  EXPECT_NE(bo.error().message.find("requested"), std::string::npos);
  EXPECT_NE(bo.error().message.find("available"), std::string::npos);
  // Capacity exhaustion is a property of the request, not retryable.
  EXPECT_FALSE(su::is_retryable(bo.error().code_enum()));
}

TEST(DeviceFaults, AllocFlakeIsTransientAndRetryable) {
  ep::FaultPlan plan;
  plan.alloc_flake_rate = 1.0;
  ep::FaultInjector inj(3, plan);
  ep::Device dev(ep::alveo_u55c());
  dev.attach_fault_injector(&inj);
  auto bo = dev.alloc(1024);
  ASSERT_FALSE(bo.has_value());
  EXPECT_EQ(bo.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_TRUE(su::is_retryable(bo.error().code_enum()));
  EXPECT_EQ(dev.allocated_bytes(), 0);
}

TEST(DeviceFaults, TransferErrorBurnsWireTimeButDeliversNothing) {
  ep::FaultPlan plan;
  plan.transfer_error_rate = 1.0;
  ep::FaultInjector inj(3, plan);
  ep::Device dev(ep::alveo_u55c());
  auto bo = dev.alloc(64 * 1024 * 1024);
  ASSERT_TRUE(bo.has_value());
  dev.attach_fault_injector(&inj);
  double before = dev.now_us();
  auto s = dev.sync_to_device(*bo);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_GT(dev.now_us(), before);           // the wire work happened
  EXPECT_EQ(dev.stats().bytes_to_device, 0); // but nothing was delivered
  EXPECT_EQ(inj.injected(ep::InjectedFault::TransferError), 1);
}

TEST(DeviceFaults, RunOnUnknownKernelNamesItAndTheDevice) {
  ep::Device dev(ep::alveo_u55c());
  auto us = dev.run("ghost");
  ASSERT_FALSE(us.has_value());
  EXPECT_EQ(us.error().code_enum(), su::ErrorCode::NotFound);
  EXPECT_NE(us.error().message.find("ghost"), std::string::npos);
  EXPECT_NE(us.error().message.find(dev.spec().name), std::string::npos);
}

TEST(DeviceFaults, KernelTimeoutStretchesLatencyByMultiplier) {
  ep::Device clean(ep::alveo_u55c());
  ep::Device faulted(ep::alveo_u55c());
  ASSERT_TRUE(clean.load_kernel("k", tiny_kernel("k", 3000)).is_ok());
  ASSERT_TRUE(faulted.load_kernel("k", tiny_kernel("k", 3000)).is_ok());
  ep::FaultPlan plan;
  plan.kernel_timeout_rate = 1.0;
  plan.kernel_timeout_multiplier = 8.0;
  ep::FaultInjector inj(3, plan);
  faulted.attach_fault_injector(&inj);
  auto base = clean.run("k");
  auto hung = faulted.run("k");
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(hung.has_value());
  EXPECT_NEAR(*hung / *base, 8.0, 1e-9);
  EXPECT_EQ(inj.injected(ep::InjectedFault::KernelTimeout), 1);
}

TEST(DeviceFaults, DeadlineAbortsHungKernelAtExactlyTheDeadline) {
  ep::Device dev(ep::alveo_u55c());
  ASSERT_TRUE(dev.load_kernel("k", tiny_kernel("k", 3000)).is_ok());
  ep::FaultPlan plan;
  plan.kernel_timeout_rate = 1.0;
  ep::FaultInjector inj(3, plan);
  dev.attach_fault_injector(&inj);
  double clean_us = 3000.0 / dev.spec().clock_mhz;
  double deadline = clean_us * 2.0;  // hung run needs 8x, so this must trip
  double before = dev.now_us();
  auto us = dev.run("k", false, deadline);
  ASSERT_FALSE(us.has_value());
  EXPECT_EQ(us.error().code_enum(), su::ErrorCode::DeadlineExceeded);
  // The watchdog abandons the wait at the deadline, not at the hung latency.
  EXPECT_NEAR(dev.now_us() - before, deadline, 1e-9);
}

TEST(DeviceFaults, ReloadingAKernelNameIsIdempotentOnFabricArea) {
  ep::Device dev(ep::alveo_u55c());
  // 1.3M LUT fabric, 400k LUT kernel: accumulating re-loads would overflow
  // the fabric by the fourth attempt; replacement must keep fitting.
  eh::KernelReport r = tiny_kernel("k", 3000);
  r.area = {400'000, 0, 0, 0};
  for (int attempt = 0; attempt < 10; ++attempt)
    ASSERT_TRUE(dev.load_kernel("k", r).is_ok()) << "attempt " << attempt;
  EXPECT_TRUE(dev.run("k").has_value());
}

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffIsDeterministicCappedAndJittered) {
  rs::RetryPolicy policy;
  policy.initial_backoff_us = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 1'000.0;
  policy.jitter = 0.2;
  for (int attempt = 1; attempt < 12; ++attempt) {
    double b = policy.backoff_us(attempt);
    EXPECT_DOUBLE_EQ(b, policy.backoff_us(attempt));  // pure in (policy, n)
    double nominal =
        std::min(100.0 * std::pow(2.0, attempt - 1), policy.max_backoff_us);
    EXPECT_GE(b, nominal * 0.8 - 1e-9);
    EXPECT_LE(b, nominal * 1.2 + 1e-9);
  }
  // A different jitter seed draws different jitter.
  rs::RetryPolicy other = policy;
  other.jitter_seed = policy.jitter_seed + 1;
  EXPECT_NE(policy.backoff_us(1), other.backoff_us(1));
}

TEST(RetryPolicy, WithRetryRecoversFromTransientFailures) {
  rs::RetryPolicy policy;
  policy.max_attempts = 5;
  eo::TraceRecorder recorder;
  int calls = 0;
  double waited = 0.0;
  auto attempt = [&]() -> su::Expected<int> {
    if (++calls < 3) return su::Error::unavailable("flaky");
    return 42;
  };
  auto result = rs::with_retry(policy, attempt,
                               [&](double us) { waited += us; }, &recorder);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(waited, policy.backoff_us(1) + policy.backoff_us(2));
  EXPECT_EQ(recorder.counter("resil.retry.attempts").value(), 2);
  EXPECT_EQ(recorder.counter("resil.retry.recovered").value(), 1);
}

TEST(RetryPolicy, WithRetryDoesNotRetryNonRetryableErrors) {
  rs::RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  auto attempt = [&]() -> su::Expected<int> {
    ++calls;
    return su::Error::invalid_argument("bad request");
  };
  auto result = rs::with_retry(policy, attempt);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, WithRetryExhaustsItsBudget) {
  rs::RetryPolicy policy;
  policy.max_attempts = 3;
  eo::TraceRecorder recorder;
  int calls = 0;
  auto attempt = [&]() -> su::Expected<int> {
    ++calls;
    return su::Error::unavailable("always down");
  };
  auto result = rs::with_retry(policy, attempt, nullptr, &recorder, "probe");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_EQ(recorder.counter("resil.retry.exhausted.probe").value(), 1);
}

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreaker, OpensAfterThresholdAndHalfOpensAfterCooldown) {
  rs::CircuitBreaker breaker(rs::CircuitBreaker::Options{3, 1'000.0});
  EXPECT_TRUE(breaker.allow(0.0));
  breaker.on_failure(10.0);
  breaker.on_failure(20.0);
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::Closed);
  breaker.on_failure(30.0);
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow(500.0));     // cooling down
  EXPECT_TRUE(breaker.allow(1'100.0));    // cooldown elapsed: one probe
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::HalfOpen);
  breaker.on_success();
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::Closed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  rs::CircuitBreaker breaker(rs::CircuitBreaker::Options{1, 1'000.0});
  breaker.on_failure(0.0);
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::Open);
  EXPECT_TRUE(breaker.allow(2'000.0));
  breaker.on_failure(2'000.0);
  EXPECT_EQ(breaker.state(), rs::CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow(2'500.0));
  EXPECT_TRUE(breaker.allow(3'100.0));
}

// ----------------------------------------------------------------- failover

namespace {

/// Primary device wired to always hang its kernels; clean backup.
struct FailoverRig {
  ep::FaultInjector inj{3, [] {
    ep::FaultPlan p;
    p.kernel_timeout_rate = 1.0;
    return p;
  }()};
  ep::Device primary{ep::alveo_u55c()};
  ep::Device backup{ep::alveo_u280()};

  FailoverRig() {
    EXPECT_TRUE(primary.load_kernel("k", tiny_kernel("k", 3000)).is_ok());
    EXPECT_TRUE(backup.load_kernel("k", tiny_kernel("k", 3000)).is_ok());
    primary.attach_fault_injector(&inj);
  }

  rs::FailoverOptions options() const {
    rs::FailoverOptions o;
    o.retry.max_attempts = 2;
    // Clean latency is 10 us at 300 MHz; a hung launch needs 80 us.
    o.deadline.deadline_us = 20.0;
    return o;
  }
};

}  // namespace

TEST(Failover, FailsOverToTheBackupDevice) {
  FailoverRig rig;
  eo::TraceRecorder recorder;
  rs::FailoverGroup group({&rig.primary, &rig.backup}, rig.options(),
                          &recorder);
  auto outcome = group.run("k");
  ASSERT_TRUE(outcome.has_value()) << outcome.error().message;
  EXPECT_EQ(outcome->executed_on, rig.backup.spec().name);
  EXPECT_TRUE(outcome->degraded);
  EXPECT_EQ(outcome->attempts, 3);  // 2 on the primary + 1 on the backup
  EXPECT_EQ(group.stats().failover_runs, 1);
  EXPECT_EQ(group.stats().primary_runs, 0);
  EXPECT_EQ(recorder.counter("resil.failover.runs").value(), 1);
}

TEST(Failover, FallsBackToHostWhenEveryDeviceFails) {
  FailoverRig rig;
  rig.backup.attach_fault_injector(&rig.inj);  // backup hangs too
  auto options = rig.options();
  options.host_fallback_us = 123.0;
  rs::FailoverGroup group({&rig.primary, &rig.backup}, options);
  auto outcome = group.run("k");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->executed_on, "host-cpu");
  EXPECT_DOUBLE_EQ(outcome->latency_us, 123.0);
  EXPECT_TRUE(outcome->degraded);
  EXPECT_EQ(group.stats().host_fallback_runs, 1);
}

TEST(Failover, PropagatesTheLastErrorWithoutAFallback) {
  FailoverRig rig;
  rig.backup.attach_fault_injector(&rig.inj);
  rs::FailoverGroup group({&rig.primary, &rig.backup}, rig.options());
  auto outcome = group.run("k");
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().code_enum(), su::ErrorCode::DeadlineExceeded);
  EXPECT_NE(outcome.error().message.find("failed on every device"),
            std::string::npos);
}

TEST(Failover, BreakerShedsARepeatedlyFailingPrimary) {
  FailoverRig rig;
  auto options = rig.options();
  options.breaker.failure_threshold = 2;
  options.breaker.open_us = 1e9;  // stays open for the whole test
  rs::FailoverGroup group({&rig.primary, &rig.backup}, options);
  for (int i = 0; i < 4; ++i) {
    auto outcome = group.run("k");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->degraded);
  }
  // Two launches trip the threshold; later runs skip the primary outright.
  EXPECT_GT(group.stats().breaker_rejections, 0);
  EXPECT_EQ(group.breaker_state(0), rs::CircuitBreaker::State::Open);
}

// ----------------------------------------------------------- network faults

TEST(NetworkFaults, LinkDropLosesTheMessageButBurnsWireTime) {
  ep::FaultPlan plan;
  plan.link_drop_rate = 1.0;
  ep::FaultInjector inj(3, plan);
  ep::ZrlmpiCommunicator comm(2);
  comm.attach_fault_injector(&inj);
  auto s = comm.send(0, 1, 1'000);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_GT(comm.now_us(), 0.0);
  EXPECT_EQ(comm.messages(), 0);
  EXPECT_EQ(comm.bytes_moved(), 0);
  EXPECT_EQ(comm.messages_lost(), 1);
}

TEST(NetworkFaults, LatencySpikeDelaysDeliveryByTheMultiplier) {
  ep::FaultPlan plan;
  plan.link_spike_rate = 1.0;
  plan.link_spike_multiplier = 10.0;
  ep::FaultInjector inj(3, plan);
  ep::ZrlmpiCommunicator clean(2), spiky(2);
  spiky.attach_fault_injector(&inj);
  ASSERT_TRUE(clean.send(0, 1, 1'000).is_ok());
  ASSERT_TRUE(spiky.send(0, 1, 1'000).is_ok());
  EXPECT_NEAR(spiky.now_us() / clean.now_us(), 10.0, 1e-9);
  EXPECT_EQ(spiky.messages_lost(), 0);  // delivered, just late
}

TEST(NetworkFaults, RetriedSendEventuallyDelivers) {
  ep::FaultPlan plan;
  plan.link_drop_rate = 0.5;
  ep::FaultInjector inj(11, plan);
  ep::ZrlmpiCommunicator comm(2);
  comm.attach_fault_injector(&inj);
  rs::RetryPolicy policy;
  policy.max_attempts = 16;
  auto result = rs::with_retry(
      policy, [&] { return comm.send(0, 1, 1'000); });
  ASSERT_TRUE(result.is_ok()) << result.message();
  EXPECT_EQ(comm.messages(), 1);
}

// ----------------------------------------------------- node fault sampling

TEST(NodeFaults, DrainRescheduledTasksCountASecondAttempt) {
  // A drain-displaced task is counted in rescheduled_tasks, so its outcome
  // must report attempts = 2 just like a crash-killed one — regression:
  // only crash victims used to get the second attempt.
  er::ClusterSpec c;
  c.nodes.push_back({"node0", 1, false, 1.0});
  c.nodes.push_back({"node1", 1, false, 1.0});
  er::ResourceManager rm(c);
  auto t1 = rm.submit({"t1", {}, 10.0});
  auto t2 = rm.submit({"t2", {}, 10.0});
  auto t3 = rm.submit({"t3", {}, 10.0});
  ASSERT_TRUE(t1.has_value() && t2.has_value() && t3.has_value());
  // Fault-free, t3 starts at t=10 on node0; draining node0 at t=5 displaces
  // exactly that start onto node1.
  rm.inject_failure({"node0", 5.0, er::FaultKind::Drain});
  auto report = rm.run();
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_EQ(report->rescheduled_tasks, 1);
  EXPECT_TRUE(report->degraded());
  EXPECT_EQ(report->tasks.at(t3->id).node, "node1");
  EXPECT_EQ(report->tasks.at(t3->id).attempts, 2);
  EXPECT_EQ(report->tasks.at(t1->id).attempts, 1);
  EXPECT_EQ(report->tasks.at(t2->id).attempts, 1);
  // attempts and rescheduled_tasks agree for every fault kind.
  int second_attempts = 0;
  for (const auto &[id, o] : report->tasks)
    if (o.attempts > 1) ++second_attempts;
  EXPECT_EQ(second_attempts, report->rescheduled_tasks);
}

TEST(NodeFaults, SamplingIsDeterministicAndSparesTheSurvivor) {
  std::vector<std::string> nodes{"node0", "node1", "node2", "node3"};
  auto a = rs::sample_node_faults(9, nodes, 0.5, 100.0, "node0");
  auto b = rs::sample_node_faults(9, nodes, 0.5, 100.0, "node0");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].at_ms, b[i].at_ms);
    EXPECT_NE(a[i].node, "node0");
    EXPECT_GE(a[i].at_ms, 10.0);
    EXPECT_LE(a[i].at_ms, 90.0);
  }
  // Rate 1 faults every node except the spared survivor.
  auto all = rs::sample_node_faults(9, nodes, 1.0, 100.0, "node0");
  EXPECT_EQ(all.size(), nodes.size() - 1);
  EXPECT_TRUE(rs::sample_node_faults(9, nodes, 0.0, 100.0).empty());
}

// ------------------------------------------------------------ dfg executor

namespace {

class DfgResilienceTest : public ::testing::Test {
protected:
  void SetUp() override {
    registry_.register_node("double_it", [](const auto &in) {
      return er::Record{(*in[0])[0] * 2.0};
    });
    registry_.register_fold("running_sum", er::Record{0.0},
                            [](const er::Record &state, const auto &in) {
                              return er::Record{state[0] + (*in[0])[0]};
                            });
    auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let doubled = double_it(xs);
    let total = fold running_sum(doubled);
    return total;
}
)");
    ASSERT_TRUE(m.has_value()) << m.error().message;
    module_ = *m;
    for (int i = 0; i < 400; ++i)
      inputs_["xs"].push_back({static_cast<double>(i % 17) * 0.25});
  }

  std::shared_ptr<everest::ir::Module> module_;
  er::NodeRegistry registry_;
  std::map<std::string, er::Stream> inputs_;
};

}  // namespace

TEST_F(DfgResilienceTest, FaultedOutputsAreIdenticalForAnyWorkerCount) {
  auto run = [&](int workers, er::DfgRunStats &stats) {
    ep::FaultPlan plan;
    plan.node_fault_rate = 0.3;
    ep::FaultInjector inj(77, plan);
    er::DfgExecOptions options;
    options.workers = workers;
    options.faults = &inj;
    options.retry.max_attempts = 6;
    return er::execute_dfg(*module_, registry_, inputs_, options, &stats);
  };
  er::DfgRunStats s1, s2, s8;
  auto r1 = run(1, s1);
  auto r2 = run(2, s2);
  auto r8 = run(8, s8);
  ASSERT_TRUE(r1.has_value()) << r1.error().message;
  ASSERT_TRUE(r2.has_value());
  ASSERT_TRUE(r8.has_value());
  EXPECT_EQ(r1->at("total"), r2->at("total"));
  EXPECT_EQ(r1->at("total"), r8->at("total"));
  // The injected fault set is keyed on element indices, not threads, so the
  // resilience accounting is worker-count invariant too.
  EXPECT_GT(s1.faults_injected, 0u);
  EXPECT_EQ(s1.faults_injected, s2.faults_injected);
  EXPECT_EQ(s1.faults_injected, s8.faults_injected);
  EXPECT_EQ(s1.element_retries, s8.element_retries);
}

TEST_F(DfgResilienceTest, CheckpointedFoldMatchesTheFaultFreeRun) {
  auto clean = er::execute_dfg(*module_, registry_, inputs_, 1);
  ASSERT_TRUE(clean.has_value());

  ep::FaultPlan plan;
  plan.fold_fault_rate = 0.1;
  ep::FaultInjector inj(5, plan);
  er::DfgExecOptions options;
  options.faults = &inj;
  options.checkpoint.interval = 16;
  er::DfgRunStats stats;
  eo::TraceRecorder recorder;
  auto faulted = er::execute_dfg(*module_, registry_, inputs_, options, &stats,
                                 &recorder);
  ASSERT_TRUE(faulted.has_value()) << faulted.error().message;
  // Replay from checkpoints reconstructs the exact fold state.
  EXPECT_EQ(clean->at("total"), faulted->at("total"));
  EXPECT_GT(stats.checkpoints_saved, 0u);
  EXPECT_GT(stats.checkpoint_restores, 0u);
  EXPECT_GT(inj.injected(ep::InjectedFault::FoldFault), 0);
  // Each restore replays at most one checkpoint interval of elements.
  EXPECT_LE(stats.elements_replayed,
            stats.checkpoint_restores * options.checkpoint.interval);
  EXPECT_EQ(recorder.counter("resil.checkpoint.saved").value(),
            static_cast<std::int64_t>(stats.checkpoints_saved));
}

TEST_F(DfgResilienceTest, CheckpointingMakesAFaultedLongFoldCompletable) {
  // Without checkpoints every fold fault restarts from element 0 and the
  // fault decisions re-roll, so a 400-element fold at a 10% step fault rate
  // can never string together a clean pass: it exhausts its fault budget.
  // Checkpointing bounds each replay to one interval, so the same fault
  // stream becomes survivable.
  auto run = [&](std::size_t interval) {
    ep::FaultPlan plan;
    plan.fold_fault_rate = 0.1;
    ep::FaultInjector inj(5, plan);
    er::DfgExecOptions options;
    options.faults = &inj;
    options.checkpoint.interval = interval;
    return er::execute_dfg(*module_, registry_, inputs_, options);
  };
  auto bare = run(0);
  ASSERT_FALSE(bare.has_value());
  EXPECT_NE(bare.error().message.find("fault budget"), std::string::npos);
  auto checkpointed = run(16);
  ASSERT_TRUE(checkpointed.has_value()) << checkpointed.error().message;
  auto clean = er::execute_dfg(*module_, registry_, inputs_, 1);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(checkpointed->at("total"), clean->at("total"));
}

TEST_F(DfgResilienceTest, FoldFaultBudgetFailsARunThatCannotProgress) {
  ep::FaultPlan plan;
  plan.fold_fault_rate = 1.0;  // every step faults at every incarnation
  ep::FaultInjector inj(5, plan);
  er::DfgExecOptions options;
  options.faults = &inj;
  options.checkpoint.interval = 16;
  auto out = er::execute_dfg(*module_, registry_, inputs_, options);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_NE(out.error().message.find("fault budget"), std::string::npos);
}

TEST_F(DfgResilienceTest, NodeRetryBudgetExhaustionNamesTheLostElement) {
  ep::FaultPlan plan;
  plan.node_fault_rate = 1.0;
  ep::FaultInjector inj(5, plan);
  er::DfgExecOptions options;
  options.faults = &inj;
  options.retry.max_attempts = 2;
  auto out = er::execute_dfg(*module_, registry_, inputs_, options);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().code_enum(), su::ErrorCode::Unavailable);
  EXPECT_NE(out.error().message.find("lost element 0"), std::string::npos);
}

TEST_F(DfgResilienceTest, StageDeadlineFailsWithDeadlineExceeded) {
  er::DfgExecOptions options;
  options.stage_deadline_us = 0.0;  // no stage can finish in zero time
  auto out = er::execute_dfg(*module_, registry_, inputs_, options);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().code_enum(), su::ErrorCode::DeadlineExceeded);
}

// ------------------------------------------------- sdk execution policy

TEST(BasecampPolicy, DeployAndRunRetriesThroughInjectedFaults) {
  es::Basecamp basecamp;
  rr::Config cfg;
  cfg.ncells = 64;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  ep::FaultPlan plan;
  plan.transfer_error_rate = 0.4;
  plan.alloc_flake_rate = 0.3;
  ep::FaultInjector inj(21, plan);
  ep::Device device(result->device);
  device.attach_fault_injector(&inj);

  rs::ExecutionPolicy policy;
  policy.retry.max_attempts = 32;
  auto us = basecamp.deploy_and_run(device, *result, policy);
  ASSERT_TRUE(us.has_value()) << us.error().message;
  EXPECT_GT(*us, 0.0);
  // The fixed seed injects faults on this op sequence; the policy retried
  // through all of them.
  EXPECT_GT(inj.injected_total(), 0);
  EXPECT_GT(basecamp.recorder().counter("resil.retry.attempts").value(), 0);
  EXPECT_EQ(basecamp.recorder().counter("resil.retry.recovered").value(), 1);
}

TEST(BasecampPolicy, ImpossibleDeadlineExhaustsTheBudget) {
  es::Basecamp basecamp;
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;
  ep::Device device(result->device);
  rs::ExecutionPolicy policy;
  policy.retry.max_attempts = 3;
  policy.deadline.deadline_us = 1e-6;  // no run can make this
  auto us = basecamp.deploy_and_run(device, *result, policy);
  ASSERT_FALSE(us.has_value());
  EXPECT_EQ(us.error().code_enum(), su::ErrorCode::DeadlineExceeded);
}

// ------------------------------------------------------------- acceptance

namespace {

/// One faulted "demo" workload spanning the platform layer: DMA in, two
/// kernel launches under a watchdog, DMA out, and a ZRLMPI handoff — every
/// step wrapped in the retry policy. Returns the result latency.
double faulted_demo(std::uint64_t seed, eo::TraceRecorder &recorder,
                    std::map<std::string, std::int64_t> &fault_counts,
                    double &final_clock) {
  ep::FaultPlan plan;
  plan.transfer_error_rate = 0.35;
  plan.alloc_flake_rate = 0.25;
  plan.kernel_timeout_rate = 0.5;
  plan.link_drop_rate = 0.45;
  ep::FaultInjector inj(seed, plan);
  inj.attach_recorder(&recorder);

  ep::Device device(ep::alveo_u55c());
  device.attach_recorder(&recorder);
  device.attach_fault_injector(&inj);
  EXPECT_TRUE(device.load_kernel("demo", tiny_kernel("demo", 3000)).is_ok());

  ep::ZrlmpiCommunicator comm(2);
  comm.attach_recorder(&recorder);
  comm.attach_fault_injector(&inj);

  rs::RetryPolicy retry;
  retry.max_attempts = 64;
  auto wait = [&](double us) { device.host_wait_us(us); };

  auto bo = rs::with_retry(
      retry, [&] { return device.alloc(8 * 1024 * 1024); }, wait, &recorder,
      "alloc");
  EXPECT_TRUE(bo.has_value());
  EXPECT_TRUE(rs::with_retry(
                  retry, [&] { return device.sync_to_device(*bo); }, wait,
                  &recorder, "dma")
                  .is_ok());
  double total_us = 0.0;
  for (int launch = 0; launch < 2; ++launch) {
    auto us = rs::with_retry(
        retry, [&] { return device.run("demo", false, 40.0); }, wait,
        &recorder, "run");
    EXPECT_TRUE(us.has_value());
    total_us += us.value_or(0.0);
  }
  EXPECT_TRUE(rs::with_retry(
                  retry, [&] { return device.sync_from_device(*bo); }, wait,
                  &recorder, "dma")
                  .is_ok());
  EXPECT_TRUE(rs::with_retry(
                  retry, [&] { return comm.send(0, 1, 1'000'000); }, wait,
                  &recorder, "send")
                  .is_ok());
  fault_counts = inj.injected_counts();
  final_clock = device.now_us();
  return total_us;
}

}  // namespace

TEST(Acceptance, FaultedRunCompletesAndIsBitReproducible) {
  eo::TraceRecorder first_rec, second_rec;
  std::map<std::string, std::int64_t> first_counts, second_counts;
  double first_clock = 0.0, second_clock = 0.0;
  double first_us = faulted_demo(0xE7F0, first_rec, first_counts, first_clock);
  double second_us =
      faulted_demo(0xE7F0, second_rec, second_counts, second_clock);

  // At least three distinct fault kinds struck this run...
  EXPECT_GE(first_counts.size(), 3u);
  EXPECT_GT(first_counts["transfer-error"], 0);
  EXPECT_GT(first_counts["kernel-timeout"], 0);
  EXPECT_GT(first_counts["link-drop"], 0);

  // ...and the run still completed with the clean-run result: a watchdog
  // deadline of 40 us only passes un-hung launches of the 10 us kernel.
  EXPECT_NEAR(first_us, 2 * 3000.0 / 300.0, 1e-9);

  // Same seed, same plan => identical faults, clocks, and traces, down to
  // the serialized Chrome trace (everything runs on simulated clocks).
  EXPECT_EQ(first_counts, second_counts);
  EXPECT_DOUBLE_EQ(first_us, second_us);
  EXPECT_DOUBLE_EQ(first_clock, second_clock);
  EXPECT_EQ(eo::chrome_trace_json(first_rec).dump(2),
            eo::chrome_trace_json(second_rec).dump(2));

  // A different seed draws a different fault schedule.
  eo::TraceRecorder other_rec;
  std::map<std::string, std::int64_t> other_counts;
  double other_clock = 0.0;
  faulted_demo(0xE7F1, other_rec, other_counts, other_clock);
  EXPECT_NE(eo::chrome_trace_json(first_rec).dump(2),
            eo::chrome_trace_json(other_rec).dump(2));
}
