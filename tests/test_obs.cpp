// Tests of the everest::obs observability layer: span recording and nesting,
// thread-safe metric aggregation, deterministic Chrome-trace export, and the
// pipeline instrumentation contract (one span per Fig. 2 basecamp stage whose
// duration backs CompileResult::timings).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "platform/xrt.hpp"
#include "sdk/basecamp.hpp"
#include "support/json.hpp"
#include "usecases/rrtmg.hpp"

namespace eo = everest::obs;
namespace es = everest::sdk;
namespace rr = everest::usecases::rrtmg;

namespace {

/// A recorder pre-filled with a fixed simulated-clock schedule; used for the
/// determinism tests (no wall-clock spans, so two fills are bit-identical).
void fill_simulated(eo::TraceRecorder &recorder) {
  recorder.record({"ingest", "resman.task", "node0", 0.0, 30'000.0,
                   {{"attempts", "1"}}});
  recorder.record({"match0", "resman.task", "node1", 31'000.0, 55'000.0, {}});
  recorder.record({"transfer", "resman.transfer", "network", 30'000.0,
                   1'000.0, {{"bytes", "200000000"}}});
  recorder.counter("resman.tasks").add(3);
  recorder.gauge("resman.makespan_ms").set(86.0);
  recorder.histogram("resman.task_ms").record(30.0);
  recorder.histogram("resman.task_ms").record(55.0);
}

}  // namespace

TEST(TraceRecorderTest, SpanRecordsOnEnd) {
  eo::TraceRecorder recorder;
  {
    auto span = recorder.span("outer", "test", "track-a");
    span.arg("k", "v");
    double us = span.end();
    EXPECT_GE(us, 0.0);
    EXPECT_EQ(span.end(), 0.0);  // idempotent: second end is a no-op
  }
  ASSERT_EQ(recorder.event_count(), 1u);
  const auto events = recorder.events();
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].track, "track-a");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "k");
  EXPECT_EQ(events[0].args[0].second, "v");
}

TEST(TraceRecorderTest, NestedSpansAreContained) {
  eo::TraceRecorder recorder;
  {
    auto outer = recorder.span("outer", "test");
    {
      auto inner = recorder.span("inner", "test");
    }
    // inner recorded first (closed first), outer still open.
    EXPECT_EQ(recorder.event_count(), 1u);
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  const auto &inner = events[0];
  const auto &outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  // The inner span's interval lies within the outer span's interval.
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
}

TEST(TraceRecorderTest, SpanMoveTransfersOwnership) {
  eo::TraceRecorder recorder;
  {
    auto a = recorder.span("moved", "test");
    auto b = std::move(a);
    // Only the move target records; the moved-from span must not.
  }
  EXPECT_EQ(recorder.event_count(), 1u);
}

TEST(TraceRecorderTest, CountersAggregateAcrossThreads) {
  eo::TraceRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&recorder] {
      for (int i = 0; i < kAdds; ++i) recorder.counter("shared").add(1);
    });
  }
  for (auto &t : pool) t.join();
  EXPECT_EQ(recorder.counter("shared").value(), kThreads * kAdds);
  const auto counters = recorder.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "shared");
  EXPECT_EQ(counters[0].second, kThreads * kAdds);
}

TEST(TraceRecorderTest, ConcurrentSpansAllRecorded) {
  eo::TraceRecorder recorder;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&recorder, t] {
      for (int i = 0; i < 50; ++i) {
        auto span = recorder.span("work", "test",
                                  "thread-" + std::to_string(t));
        span.end();
      }
    });
  }
  for (auto &t : pool) t.join();
  EXPECT_EQ(recorder.event_count(), kThreads * 50u);
}

TEST(TraceRecorderTest, HistogramSummaryIsExact) {
  eo::TraceRecorder recorder;
  for (double v : {4.0, 1.0, 3.0, 2.0}) recorder.histogram("h").record(v);
  auto s = recorder.histogram("h").summarize();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
}

TEST(TraceRecorderTest, GlobalRecorderScopedInstall) {
  EXPECT_EQ(eo::global_recorder(), nullptr);
  eo::TraceRecorder recorder;
  {
    eo::ScopedGlobalRecorder scope(&recorder);
    EXPECT_EQ(eo::global_recorder(), &recorder);
  }
  EXPECT_EQ(eo::global_recorder(), nullptr);
}

TEST(TraceRecorderTest, ClearDropsEventsAndMetrics) {
  eo::TraceRecorder recorder;
  fill_simulated(recorder);
  EXPECT_GT(recorder.event_count(), 0u);
  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_TRUE(recorder.counters().empty());
  EXPECT_TRUE(recorder.gauges().empty());
  EXPECT_TRUE(recorder.histograms().empty());
}

TEST(ChromeTraceTest, DeterministicForSimulatedClock) {
  eo::TraceRecorder a;
  eo::TraceRecorder b;
  fill_simulated(a);
  fill_simulated(b);
  EXPECT_EQ(eo::chrome_trace_json(a).dump(2), eo::chrome_trace_json(b).dump(2));
  EXPECT_EQ(eo::summary_table(a), eo::summary_table(b));
}

TEST(ChromeTraceTest, EmitsValidTraceEventStructure) {
  eo::TraceRecorder recorder;
  fill_simulated(recorder);
  auto doc = eo::chrome_trace_json(recorder);

  // The dump parses back as JSON (exporter and parser agree).
  auto parsed = everest::support::Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;

  EXPECT_EQ(doc["displayTimeUnit"].as_string(), "ms");
  const auto &events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  // 3 tracks (network, node0, node1) -> 3 "M" rows + 3 "X" events.
  ASSERT_EQ(events.size(), 6u);
  std::vector<std::string> thread_names;
  std::size_t complete_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto &e = events[i];
    EXPECT_EQ(e["pid"].as_int(), 1);
    if (e["ph"].as_string() == "M") {
      EXPECT_EQ(e["name"].as_string(), "thread_name");
      thread_names.push_back(e["args"]["name"].as_string());
    } else {
      ASSERT_EQ(e["ph"].as_string(), "X");
      EXPECT_TRUE(e.contains("ts"));
      EXPECT_TRUE(e.contains("dur"));
      ++complete_events;
    }
  }
  EXPECT_EQ(complete_events, 3u);
  EXPECT_EQ(thread_names,
            (std::vector<std::string>{"network", "node0", "node1"}));

  // Simulated timestamps survive the export verbatim (microseconds).
  bool found_ingest = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i]["name"].as_string() == "ingest") {
      found_ingest = true;
      EXPECT_DOUBLE_EQ(events[i]["ts"].as_number(), 0.0);
      EXPECT_DOUBLE_EQ(events[i]["dur"].as_number(), 30'000.0);
      EXPECT_EQ(events[i]["args"]["attempts"].as_string(), "1");
    }
  }
  EXPECT_TRUE(found_ingest);

  // Metrics ride along as trace metadata.
  EXPECT_EQ(doc["otherData"]["resman.tasks"].as_int(), 3);
  EXPECT_DOUBLE_EQ(doc["otherData"]["resman.makespan_ms"].as_number(), 86.0);
  EXPECT_EQ(doc["otherData"]["resman.task_ms"]["count"].as_int(), 2);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundTrips) {
  eo::TraceRecorder recorder;
  fill_simulated(recorder);
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  auto s = eo::write_chrome_trace(recorder, path);
  ASSERT_TRUE(s.is_ok()) << s.error().message;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = everest::support::Json::parse(buf.str());
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_EQ((*parsed)["traceEvents"].size(), 6u);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, WriteFailsWithNotFoundForBadPath) {
  eo::TraceRecorder recorder;
  auto s = eo::write_chrome_trace(recorder, "/nonexistent-dir/trace.json");
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code_enum(), everest::support::ErrorCode::NotFound);
}

TEST(ChromeTraceTest, SummaryTableAggregatesSpans) {
  eo::TraceRecorder recorder;
  fill_simulated(recorder);
  std::string table = eo::summary_table(recorder);
  EXPECT_NE(table.find("resman.task"), std::string::npos);
  EXPECT_NE(table.find("resman.transfer"), std::string::npos);
  EXPECT_NE(table.find("resman.tasks"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
}

TEST(PipelineInstrumentationTest, OneSpanPerFig2Stage) {
  es::Basecamp basecamp;
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  std::vector<eo::TraceEvent> pipeline;
  for (const auto &ev : basecamp.recorder().events())
    if (ev.category == "sdk.pipeline") pipeline.push_back(ev);

  // Exactly one span per Fig. 2 stage, all on the basecamp track.
  const std::vector<std::string> stages = {
      "parse-ekl",         "lower-ekl-to-teil", "esn-reorder",
      "lower-teil-to-loops", "hls-schedule",    "olympus-estimate",
      "olympus-generate"};
  for (const auto &stage : stages) {
    auto n = std::count_if(pipeline.begin(), pipeline.end(),
                           [&](const eo::TraceEvent &e) {
                             return e.name == stage;
                           });
    EXPECT_EQ(n, 1) << stage;
  }
  for (const auto &ev : pipeline) EXPECT_EQ(ev.track, "basecamp");

  // CompileResult::timings is derived from the very same spans: the reported
  // milliseconds equal the span duration exactly.
  for (const auto &t : result->timings) {
    auto it = std::find_if(pipeline.begin(), pipeline.end(),
                           [&](const eo::TraceEvent &e) {
                             return e.name == t.stage;
                           });
    ASSERT_NE(it, pipeline.end()) << t.stage;
    EXPECT_DOUBLE_EQ(t.ms, it->duration_us / 1000.0) << t.stage;
  }
}

TEST(PipelineInstrumentationTest, DeviceSpansLandOnDeviceTimeline) {
  es::Basecamp basecamp;
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  everest::platform::Device device(result->device);
  device.attach_recorder(&basecamp.recorder());
  auto us = basecamp.deploy_and_run(device, *result);
  ASSERT_TRUE(us.has_value()) << us.error().message;

  std::size_t dma = 0, kernels = 0;
  for (const auto &ev : basecamp.recorder().events()) {
    if (ev.track != result->device.name) continue;
    if (ev.category == "xrt.dma") ++dma;
    if (ev.category == "xrt.kernel") ++kernels;
    // Device events sit on the simulated clock, inside [0, now].
    EXPECT_GE(ev.start_us, 0.0);
    EXPECT_LE(ev.start_us + ev.duration_us, device.now_us() + 1e-9);
  }
  EXPECT_GT(dma, 0u);
  EXPECT_EQ(kernels, 1u);
  EXPECT_EQ(basecamp.recorder().counter("xrt.kernel_launches").value(), 1);
}
