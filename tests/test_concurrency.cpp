// Concurrency tests (run under the tsan preset, CTest label "concurrency"):
// the support::ThreadPool itself, the determinism of parallel Basecamp
// compilation — compile_many(jobs=N) must be byte-identical to the serial
// path for any N — and a multi-threaded stress of the compile cache.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sdk/basecamp.hpp"
#include "sdk/compile_cache.hpp"
#include "support/thread_pool.hpp"
#include "usecases/rrtmg.hpp"

namespace es = everest::sdk;
namespace esup = everest::support;
namespace rr = everest::usecases::rrtmg;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  esup::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto a = pool.submit([] { return 40 + 2; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  esup::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionsSurfaceThroughFutures) {
  esup::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, WaitIdleDrainsEverything) {
  esup::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.active(), 0u);
}

TEST(ThreadPoolTest, ObserverSeesQueueTransitions) {
  esup::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.set_observer([&](std::size_t, std::size_t) { calls.fetch_add(1); });
  for (int i = 0; i < 10; ++i) pool.submit([] {});
  pool.wait_idle();
  // At least one notification per enqueue and one per completion.
  EXPECT_GE(calls.load(), 20);
}

TEST(ThreadPoolTest, ParallelIndexedPreservesOrder) {
  auto square = [](std::size_t i) { return static_cast<int>(i * i); };
  // Inline path (no pool) and pooled path must agree element-for-element.
  auto inline_results = esup::parallel_indexed(nullptr, 16, square);
  esup::ThreadPool pool(4);
  auto pooled = esup::parallel_indexed(&pool, 16, square);
  EXPECT_EQ(inline_results, pooled);
  for (std::size_t i = 0; i < pooled.size(); ++i)
    EXPECT_EQ(pooled[i], static_cast<int>(i * i));
}

// ---------------------------------------------------------------------------
// Parallel compilation determinism

namespace {

std::vector<es::CompileJob> make_jobs() {
  std::vector<es::CompileJob> jobs;
  for (std::int64_t ncells : {8, 16, 32}) {
    rr::Config cfg;
    cfg.ncells = ncells;
    rr::Data data = rr::make_data(cfg);
    es::CompileJob job;
    job.kind = es::CompileJob::Kind::Ekl;
    job.name = "rrtmg-" + std::to_string(ncells);
    job.source = rr::ekl_source();
    job.bindings = rr::bindings(data);
    jobs.push_back(std::move(job));
  }
  es::CompileJob mm;
  mm.kind = es::CompileJob::Kind::Cfdlang;
  mm.name = "mm";
  mm.source = R"(
program mm
input A : [16, 24]
input B : [24, 8]
output C = contract(outer(A, B), 1, 2)
)";
  jobs.push_back(std::move(mm));
  return jobs;
}

/// Asserts two compiles of the same job produced the same artifacts: IR
/// module texts, stage-name sequence, HLS schedule, and system estimate.
/// (Wall-clock ms naturally differ.)
void expect_equivalent(const es::CompileResult &a, const es::CompileResult &b,
                       bool compare_stages = true) {
  EXPECT_EQ(a.frontend_ir->str(), b.frontend_ir->str());
  EXPECT_EQ(a.teil_ir->str(), b.teil_ir->str());
  EXPECT_EQ(a.loop_ir->str(), b.loop_ir->str());
  EXPECT_EQ(a.system_ir->str(), b.system_ir->str());
  EXPECT_EQ(a.datapath_bits, b.datapath_bits);
  EXPECT_EQ(a.ekl_source_lines, b.ekl_source_lines);
  EXPECT_EQ(a.device.name, b.device.name);

  if (compare_stages) {
    ASSERT_EQ(a.timings.size(), b.timings.size());
    for (std::size_t i = 0; i < a.timings.size(); ++i)
      EXPECT_EQ(a.timings[i].stage, b.timings[i].stage) << "stage " << i;
  }

  EXPECT_EQ(a.kernel.name, b.kernel.name);
  EXPECT_EQ(a.kernel.total_cycles, b.kernel.total_cycles);
  EXPECT_EQ(a.kernel.dataflow_cycles, b.kernel.dataflow_cycles);
  EXPECT_EQ(a.kernel.area.luts, b.kernel.area.luts);
  EXPECT_EQ(a.kernel.area.dsps, b.kernel.area.dsps);
  EXPECT_EQ(a.kernel.area.brams, b.kernel.area.brams);
  ASSERT_EQ(a.kernel.stages.size(), b.kernel.stages.size());
  for (std::size_t i = 0; i < a.kernel.stages.size(); ++i) {
    EXPECT_EQ(a.kernel.stages[i].ii, b.kernel.stages[i].ii);
    EXPECT_EQ(a.kernel.stages[i].depth, b.kernel.stages[i].depth);
    EXPECT_EQ(a.kernel.stages[i].latency_cycles,
              b.kernel.stages[i].latency_cycles);
  }

  EXPECT_DOUBLE_EQ(a.estimate.total_us, b.estimate.total_us);
  EXPECT_DOUBLE_EQ(a.estimate.compute_us, b.estimate.compute_us);
  EXPECT_DOUBLE_EQ(a.estimate.memory_us, b.estimate.memory_us);
  EXPECT_EQ(a.estimate.replicas, b.estimate.replicas);
  EXPECT_EQ(a.estimate.tiles, b.estimate.tiles);
  EXPECT_EQ(a.estimate.fits, b.estimate.fits);
  EXPECT_DOUBLE_EQ(a.estimate.utilization, b.estimate.utilization);
}

}  // namespace

TEST(ParallelCompileTest, JobsCountDoesNotChangeResults) {
  auto jobs = make_jobs();
  es::Basecamp serial;
  auto baseline = serial.compile_many(jobs, 1);
  ASSERT_EQ(baseline.size(), jobs.size());
  for (const auto &r : baseline) ASSERT_TRUE(r.has_value());

  for (int n : {2, 8}) {
    es::Basecamp parallel;
    auto results = parallel.compile_many(jobs, n);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(results[i].has_value())
          << "jobs=" << n << " " << results[i].error().message;
      expect_equivalent(*baseline[i], *results[i]);
    }
  }
}

TEST(ParallelCompileTest, ErrorsStayIndexAligned) {
  auto jobs = make_jobs();
  es::CompileJob bad;
  bad.name = "broken";
  bad.source = "kernel k\nz = nope\n";
  jobs.insert(jobs.begin() + 1, bad);

  es::Basecamp basecamp;
  auto results = basecamp.compile_many(jobs, 8);
  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_TRUE(results[0].has_value());
  ASSERT_FALSE(results[1].has_value());
  // The job label is attached so batch failures are attributable.
  EXPECT_NE(results[1].error().message.find("broken"), std::string::npos);
  EXPECT_TRUE(results[2].has_value());
  EXPECT_TRUE(results[3].has_value());
}

TEST(ParallelCompileTest, CachedParallelCompileMatchesSerialUncached) {
  auto jobs = make_jobs();
  es::Basecamp plain;
  auto baseline = plain.compile_many(jobs, 1);

  es::CompileCache cache;
  es::Basecamp cached;
  cached.attach_cache(&cache);
  // Two rounds: the first fills the cache (racing identical jobs is fine),
  // the second is all warm hits. Both must reproduce the uncached artifacts.
  for (int round = 0; round < 2; ++round) {
    auto results = cached.compile_many(jobs, 8);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(results[i].has_value())
          << "round " << round << ": " << results[i].error().message;
      expect_equivalent(*baseline[i], *results[i], /*compare_stages=*/false);
    }
  }
  EXPECT_GT(cache.hits(), 0);

  // The pool mirrored its pressure into the recorder's gauges.
  bool saw_pool_gauge = false;
  for (const auto &[name, value] : cached.recorder().gauges())
    if (name == "sdk.pool.active") saw_pool_gauge = true;
  EXPECT_TRUE(saw_pool_gauge);
}

// ---------------------------------------------------------------------------
// Cache stress

TEST(CompileCacheStressTest, EightThreadsHammeringOneCache) {
  // One real compile provides a template entry to replicate under distinct
  // keys; the threads then mix hits, misses, stores, and evictions.
  es::Basecamp basecamp;
  rr::Config cfg;
  cfg.ncells = 8;
  rr::Data data = rr::make_data(cfg);
  auto seed = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(seed.has_value()) << seed.error().message;
  es::CompileCacheEntry entry{seed->teil_ir,  seed->loop_ir,
                              seed->system_ir, seed->kernel,
                              seed->estimate,  seed->datapath_bits};
  const std::string teil_text = seed->teil_ir->str();

  es::CompileCache cache;
  cache.set_capacity(16);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::uint64_t key = static_cast<std::uint64_t>((t * 200 + i) % 32);
        std::uint64_t probe = static_cast<std::uint64_t>((t * 200 + i) % 48);
        cache.store(key, entry);
        auto hit = cache.lookup(probe);  // keys 32..47 are never stored
        if (hit) {
          // Handed-out clones must match the master byte-for-byte and be
          // private: mutating-by-aliasing another thread's copy is impossible
          // because every lookup returns a fresh deep clone.
          if (hit->teil_ir->str() != teil_text) failures.fetch_add(1);
          if (hit->teil_ir == seed->teil_ir) failures.fetch_add(1);
        }
        cache.direct_store("fp-" + std::to_string(key), key);
        auto mapped = cache.direct_lookup("fp-" + std::to_string(probe));
        if (mapped && *mapped >= 48) failures.fetch_add(1);
      }
    });
  }
  for (auto &th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.evictions(), 0);
  // Every lookup was either a hit or a miss, never lost.
  EXPECT_EQ(cache.hits() + cache.misses(), 8 * 200);
}
