// Integration tests of the basecamp facade: whole-pipeline compiles of the
// Fig. 3 kernel and a CFDlang program, target selection, custom number
// formats, and deployment onto the device models.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "platform/xrt.hpp"
#include "sdk/basecamp.hpp"
#include "usecases/rrtmg.hpp"

namespace es = everest::sdk;
namespace rr = everest::usecases::rrtmg;

class BasecampTest : public ::testing::Test {
protected:
  es::Basecamp basecamp_;
};

TEST_F(BasecampTest, DeviceLookup) {
  EXPECT_TRUE(basecamp_.device_by_name("alveo-u55c").has_value());
  EXPECT_TRUE(basecamp_.device_by_name("alveo-u280").has_value());
  EXPECT_TRUE(basecamp_.device_by_name("cloudfpga").has_value());
  EXPECT_FALSE(basecamp_.device_by_name("stratix").has_value());
}

TEST_F(BasecampTest, CompilesFig3EndToEnd) {
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  EXPECT_NE(result->frontend_ir, nullptr);
  EXPECT_NE(result->teil_ir, nullptr);
  EXPECT_NE(result->loop_ir, nullptr);
  EXPECT_NE(result->system_ir, nullptr);
  EXPECT_GT(result->kernel.total_cycles, 0);
  EXPECT_GT(result->estimate.total_us, 0.0);
  EXPECT_TRUE(result->estimate.fits);
  EXPECT_GT(result->ekl_source_lines, 10u);
  EXPECT_LT(result->ekl_source_lines, 30u);

  // Every pipeline stage reported a timing.
  std::vector<std::string> stages;
  for (const auto &t : result->timings) stages.push_back(t.stage);
  for (const char *expected :
       {"parse-ekl", "lower-ekl-to-teil", "esn-reorder",
        "lower-teil-to-loops", "hls-schedule", "olympus-estimate",
        "olympus-generate"}) {
    EXPECT_NE(std::find(stages.begin(), stages.end(), expected), stages.end())
        << expected;
  }
}

TEST_F(BasecampTest, CustomFormatShrinksDatapath) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);

  es::CompileOptions wide;
  es::CompileOptions narrow;
  narrow.number_format = "fixed<16,12>";
  auto w = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), wide);
  auto n = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), narrow);
  ASSERT_TRUE(w.has_value()) << w.error().message;
  ASSERT_TRUE(n.has_value()) << n.error().message;
  EXPECT_EQ(n->datapath_bits, 16);
  EXPECT_LT(n->kernel.area.luts, w->kernel.area.luts);
  EXPECT_LE(n->estimate.total_us, w->estimate.total_us);
}

TEST_F(BasecampTest, RejectsBadInputs) {
  EXPECT_FALSE(basecamp_.compile_ekl("kernel k\nz = nope\n", {}).has_value());
  rr::Config cfg;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions bad_target;
  bad_target.target = "virtex2";
  EXPECT_FALSE(basecamp_
                   .compile_ekl(rr::ekl_source(), rr::bindings(data),
                                bad_target)
                   .has_value());
  es::CompileOptions bad_format;
  bad_format.number_format = "decimal<10>";
  EXPECT_FALSE(basecamp_
                   .compile_ekl(rr::ekl_source(), rr::bindings(data),
                                bad_format)
                   .has_value());
}

TEST_F(BasecampTest, OptionsBuilderValidatesEagerly) {
  auto good = es::CompileOptions::make()
                  .target("alveo-u280")
                  .number_format("fixed<16,8>")
                  .replicas(4)
                  .canonicalize(false)
                  .build();
  ASSERT_TRUE(good.has_value()) << good.error().message;
  EXPECT_EQ(good->target, "alveo-u280");
  EXPECT_EQ(good->number_format, "fixed<16,8>");
  EXPECT_EQ(good->olympus.replicas, 4);
  EXPECT_FALSE(good->canonicalize);

  // Defaults build cleanly.
  EXPECT_TRUE(es::CompileOptions::make().build().has_value());

  auto bad_target = es::CompileOptions::make().target("virtex2").build();
  ASSERT_FALSE(bad_target.has_value());
  EXPECT_EQ(bad_target.error().code_enum(),
            everest::support::ErrorCode::NotFound);

  auto bad_format =
      es::CompileOptions::make().number_format("decimal<10>").build();
  ASSERT_FALSE(bad_format.has_value());
  EXPECT_EQ(bad_format.error().code_enum(),
            everest::support::ErrorCode::Unsupported);

  auto bad_replicas = es::CompileOptions::make().replicas(0).build();
  ASSERT_FALSE(bad_replicas.has_value());
  EXPECT_EQ(bad_replicas.error().code_enum(),
            everest::support::ErrorCode::InvalidArgument);
}

TEST_F(BasecampTest, BuilderOptionsCompileLikeHandWrittenOnes) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  auto options = es::CompileOptions::make()
                     .target("alveo-u280")
                     .number_format("fixed<16,12>")
                     .build();
  ASSERT_TRUE(options.has_value()) << options.error().message;
  auto result =
      basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), *options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->device.name, "alveo-u280");
  EXPECT_EQ(result->datapath_bits, 16);
}

TEST_F(BasecampTest, BadOptionsFailWithCodedErrors) {
  rr::Config cfg;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions bad_target;
  bad_target.target = "virtex2";
  auto r = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data),
                                 bad_target);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code_enum(), everest::support::ErrorCode::NotFound);

  es::CompileOptions bad_format;
  bad_format.number_format = "decimal<10>";
  r = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), bad_format);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code_enum(), everest::support::ErrorCode::Unsupported);
}

TEST_F(BasecampTest, CompilesCfdlang) {
  auto result = basecamp_.compile_cfdlang(R"(
program mm
input A : [16, 24]
input B : [24, 8]
output C = contract(outer(A, B), 1, 2)
)");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_GT(result->kernel.total_cycles, 0);
  EXPECT_EQ(result->kernel.name, "mm");
}

TEST_F(BasecampTest, DeployAndRunOnU55c) {
  rr::Config cfg;
  cfg.ncells = 64;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  everest::platform::Device device(result->device);
  auto us = basecamp_.deploy_and_run(device, *result);
  ASSERT_TRUE(us.has_value()) << us.error().message;
  EXPECT_GT(*us, 0.0);
  EXPECT_EQ(device.stats().kernel_launches, 1);
}

TEST_F(BasecampTest, CloudFpgaTargetWorks) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions options;
  options.target = "cloudfpga";
  auto result =
      basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->device.name, "cloudfpga");
  // Network-attached: transfers dominated by the 10G link.
  everest::platform::Device device(result->device);
  auto us = basecamp_.deploy_and_run(device, *result);
  ASSERT_TRUE(us.has_value()) << us.error().message;
}

// ---------------------------------------------------------------------------
// Compile cache

namespace {

/// A fresh per-test cache directory under the build tree.
std::string fresh_cache_dir(const char *tag) {
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("everest-cache-") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace

class CompileCacheTest : public ::testing::Test {
protected:
  es::CompileResult compile(es::Basecamp &basecamp,
                            const es::CompileOptions &options = {},
                            std::int64_t ncells = 16,
                            const std::string &source = rr::ekl_source()) {
    rr::Config cfg;
    cfg.ncells = ncells;
    rr::Data data = rr::make_data(cfg);
    auto result = basecamp.compile_ekl(source, rr::bindings(data), options);
    EXPECT_TRUE(result.has_value()) << result.error().message;
    return *result;
  }

  static bool has_stage(const es::CompileResult &result, const char *stage) {
    for (const auto &t : result.timings)
      if (t.stage == stage) return true;
    return false;
  }
};

TEST_F(CompileCacheTest, HitOnIdenticalRecompile) {
  es::CompileCache cache;
  es::Basecamp basecamp;
  basecamp.attach_cache(&cache);

  auto cold = compile(basecamp);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
  EXPECT_TRUE(has_stage(cold, "hls-schedule"));

  auto warm = compile(basecamp);
  EXPECT_EQ(cache.hits(), 1);
  // The warm compile skipped the whole backend: no lowering, no HLS.
  EXPECT_FALSE(has_stage(warm, "lower-ekl-to-teil"));
  EXPECT_FALSE(has_stage(warm, "hls-schedule"));
  EXPECT_TRUE(has_stage(warm, "cache-lookup"));

  // ...and produced identical artifacts.
  EXPECT_EQ(cold.teil_ir->str(), warm.teil_ir->str());
  EXPECT_EQ(cold.loop_ir->str(), warm.loop_ir->str());
  EXPECT_EQ(cold.system_ir->str(), warm.system_ir->str());
  EXPECT_EQ(cold.kernel.total_cycles, warm.kernel.total_cycles);
  EXPECT_DOUBLE_EQ(cold.estimate.total_us, warm.estimate.total_us);
}

TEST_F(CompileCacheTest, AnyPerturbationMisses) {
  es::CompileCache cache;
  es::Basecamp basecamp;
  basecamp.attach_cache(&cache);

  compile(basecamp);
  compile(basecamp);
  ASSERT_EQ(cache.hits(), 1);

  // Renamed tensor (every occurrence, so the program stays valid): miss.
  std::string tweaked = rr::ekl_source();
  ASSERT_NE(tweaked.find("tau"), std::string::npos);
  for (auto pos = tweaked.find("tau"); pos != std::string::npos;
       pos = tweaked.find("tau", pos + 3))
    tweaked.replace(pos, 3, "phi");
  compile(basecamp, {}, 16, tweaked);
  EXPECT_EQ(cache.hits(), 1);

  // Different input extent: miss.
  compile(basecamp, {}, 32);
  EXPECT_EQ(cache.hits(), 1);

  // Different options: miss.
  es::CompileOptions replicas;
  replicas.olympus.replicas = 2;
  compile(basecamp, replicas);
  EXPECT_EQ(cache.hits(), 1);

  // Different target device: miss.
  es::CompileOptions u280;
  u280.target = "alveo-u280";
  compile(basecamp, u280);
  EXPECT_EQ(cache.hits(), 1);

  // The original compile still hits.
  compile(basecamp);
  EXPECT_EQ(cache.hits(), 2);
}

TEST_F(CompileCacheTest, PersistsAcrossInstances) {
  auto dir = fresh_cache_dir("persist");
  es::CompileResult cold;
  {
    es::CompileCache cache(dir);
    es::Basecamp basecamp;
    basecamp.attach_cache(&cache);
    cold = compile(basecamp);
    EXPECT_EQ(cache.hits(), 0);
  }
  // A new cache instance (new process, conceptually) hits from disk.
  es::CompileCache cache(dir);
  es::Basecamp basecamp;
  basecamp.attach_cache(&cache);
  auto warm = compile(basecamp);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cold.teil_ir->str(), warm.teil_ir->str());
  EXPECT_EQ(cold.system_ir->str(), warm.system_ir->str());
  EXPECT_EQ(cold.kernel.total_cycles, warm.kernel.total_cycles);
  std::filesystem::remove_all(dir);
}

TEST_F(CompileCacheTest, CorruptedEntryIsCodedAndFallsBack) {
  auto dir = fresh_cache_dir("corrupt");
  {
    es::CompileCache cache(dir);
    es::Basecamp basecamp;
    basecamp.attach_cache(&cache);
    compile(basecamp);
  }
  // Truncate every persisted entry (keep the direct-tier mappings so the
  // lookup path actually reaches the corrupt payloads).
  for (const auto &file : std::filesystem::directory_iterator(dir)) {
    if (file.path().filename().string().rfind("direct-", 0) == 0) continue;
    std::ofstream(file.path()) << "{ not json";
  }

  es::CompileCache cache(dir);
  es::Basecamp basecamp;
  basecamp.attach_cache(&cache);
  auto fp = cache.direct_lookup(
      "probe-nonexistent");  // unrelated probe: plain miss, not an error
  EXPECT_FALSE(fp.has_value());

  // compile_ekl degrades gracefully to a fresh compile (both the direct-tier
  // and content-tier lookups run into the corrupt payload).
  auto result = compile(basecamp);
  EXPECT_GE(cache.corruptions(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(result.kernel.total_cycles, 0);

  // Direct cache API: the error carries the InvalidArgument code.
  {
    es::CompileCache poke(dir);
    std::ofstream(dir + "/deadbeefdeadbeef.json") << "also { not json";
    auto bad = poke.lookup(0xdeadbeefdeadbeefull);
    ASSERT_FALSE(bad.has_value());
    EXPECT_EQ(bad.error().code_enum(),
              everest::support::ErrorCode::InvalidArgument);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(CompileCacheTest, LruEvictionIsBoundedAndCounted) {
  es::CompileCache cache;
  cache.set_capacity(2);
  es::Basecamp basecamp;
  basecamp.attach_cache(&cache);
  for (std::int64_t ncells : {8, 16, 32, 64}) compile(basecamp, {}, ncells);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GT(cache.evictions(), 0);
  // Counters are mirrored onto the SDK recorder.
  bool saw_miss = false;
  for (const auto &[name, value] : basecamp.recorder().counters())
    if (name == "sdk.cache.miss" && value > 0) saw_miss = true;
  EXPECT_TRUE(saw_miss);
}
