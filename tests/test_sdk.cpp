// Integration tests of the basecamp facade: whole-pipeline compiles of the
// Fig. 3 kernel and a CFDlang program, target selection, custom number
// formats, and deployment onto the device models.

#include <gtest/gtest.h>

#include "platform/xrt.hpp"
#include "sdk/basecamp.hpp"
#include "usecases/rrtmg.hpp"

namespace es = everest::sdk;
namespace rr = everest::usecases::rrtmg;

class BasecampTest : public ::testing::Test {
protected:
  es::Basecamp basecamp_;
};

TEST_F(BasecampTest, DeviceLookup) {
  EXPECT_TRUE(basecamp_.device_by_name("alveo-u55c").has_value());
  EXPECT_TRUE(basecamp_.device_by_name("alveo-u280").has_value());
  EXPECT_TRUE(basecamp_.device_by_name("cloudfpga").has_value());
  EXPECT_FALSE(basecamp_.device_by_name("stratix").has_value());
}

TEST_F(BasecampTest, CompilesFig3EndToEnd) {
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  EXPECT_NE(result->frontend_ir, nullptr);
  EXPECT_NE(result->teil_ir, nullptr);
  EXPECT_NE(result->loop_ir, nullptr);
  EXPECT_NE(result->system_ir, nullptr);
  EXPECT_GT(result->kernel.total_cycles, 0);
  EXPECT_GT(result->estimate.total_us, 0.0);
  EXPECT_TRUE(result->estimate.fits);
  EXPECT_GT(result->ekl_source_lines, 10u);
  EXPECT_LT(result->ekl_source_lines, 30u);

  // Every pipeline stage reported a timing.
  std::vector<std::string> stages;
  for (const auto &t : result->timings) stages.push_back(t.stage);
  for (const char *expected :
       {"parse-ekl", "lower-ekl-to-teil", "esn-reorder",
        "lower-teil-to-loops", "hls-schedule", "olympus-estimate",
        "olympus-generate"}) {
    EXPECT_NE(std::find(stages.begin(), stages.end(), expected), stages.end())
        << expected;
  }
}

TEST_F(BasecampTest, CustomFormatShrinksDatapath) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);

  es::CompileOptions wide;
  es::CompileOptions narrow;
  narrow.number_format = "fixed<16,12>";
  auto w = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), wide);
  auto n = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), narrow);
  ASSERT_TRUE(w.has_value()) << w.error().message;
  ASSERT_TRUE(n.has_value()) << n.error().message;
  EXPECT_EQ(n->datapath_bits, 16);
  EXPECT_LT(n->kernel.area.luts, w->kernel.area.luts);
  EXPECT_LE(n->estimate.total_us, w->estimate.total_us);
}

TEST_F(BasecampTest, RejectsBadInputs) {
  EXPECT_FALSE(basecamp_.compile_ekl("kernel k\nz = nope\n", {}).has_value());
  rr::Config cfg;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions bad_target;
  bad_target.target = "virtex2";
  EXPECT_FALSE(basecamp_
                   .compile_ekl(rr::ekl_source(), rr::bindings(data),
                                bad_target)
                   .has_value());
  es::CompileOptions bad_format;
  bad_format.number_format = "decimal<10>";
  EXPECT_FALSE(basecamp_
                   .compile_ekl(rr::ekl_source(), rr::bindings(data),
                                bad_format)
                   .has_value());
}

TEST_F(BasecampTest, OptionsBuilderValidatesEagerly) {
  auto good = es::CompileOptions::make()
                  .target("alveo-u280")
                  .number_format("fixed<16,8>")
                  .replicas(4)
                  .canonicalize(false)
                  .build();
  ASSERT_TRUE(good.has_value()) << good.error().message;
  EXPECT_EQ(good->target, "alveo-u280");
  EXPECT_EQ(good->number_format, "fixed<16,8>");
  EXPECT_EQ(good->olympus.replicas, 4);
  EXPECT_FALSE(good->canonicalize);

  // Defaults build cleanly.
  EXPECT_TRUE(es::CompileOptions::make().build().has_value());

  auto bad_target = es::CompileOptions::make().target("virtex2").build();
  ASSERT_FALSE(bad_target.has_value());
  EXPECT_EQ(bad_target.error().code_enum(),
            everest::support::ErrorCode::NotFound);

  auto bad_format =
      es::CompileOptions::make().number_format("decimal<10>").build();
  ASSERT_FALSE(bad_format.has_value());
  EXPECT_EQ(bad_format.error().code_enum(),
            everest::support::ErrorCode::Unsupported);

  auto bad_replicas = es::CompileOptions::make().replicas(0).build();
  ASSERT_FALSE(bad_replicas.has_value());
  EXPECT_EQ(bad_replicas.error().code_enum(),
            everest::support::ErrorCode::InvalidArgument);
}

TEST_F(BasecampTest, BuilderOptionsCompileLikeHandWrittenOnes) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  auto options = es::CompileOptions::make()
                     .target("alveo-u280")
                     .number_format("fixed<16,12>")
                     .build();
  ASSERT_TRUE(options.has_value()) << options.error().message;
  auto result =
      basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), *options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->device.name, "alveo-u280");
  EXPECT_EQ(result->datapath_bits, 16);
}

TEST_F(BasecampTest, BadOptionsFailWithCodedErrors) {
  rr::Config cfg;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions bad_target;
  bad_target.target = "virtex2";
  auto r = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data),
                                 bad_target);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code_enum(), everest::support::ErrorCode::NotFound);

  es::CompileOptions bad_format;
  bad_format.number_format = "decimal<10>";
  r = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), bad_format);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code_enum(), everest::support::ErrorCode::Unsupported);
}

TEST_F(BasecampTest, CompilesCfdlang) {
  auto result = basecamp_.compile_cfdlang(R"(
program mm
input A : [16, 24]
input B : [24, 8]
output C = contract(outer(A, B), 1, 2)
)");
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_GT(result->kernel.total_cycles, 0);
  EXPECT_EQ(result->kernel.name, "mm");
}

TEST_F(BasecampTest, DeployAndRunOnU55c) {
  rr::Config cfg;
  cfg.ncells = 64;
  rr::Data data = rr::make_data(cfg);
  auto result = basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data));
  ASSERT_TRUE(result.has_value()) << result.error().message;

  everest::platform::Device device(result->device);
  auto us = basecamp_.deploy_and_run(device, *result);
  ASSERT_TRUE(us.has_value()) << us.error().message;
  EXPECT_GT(*us, 0.0);
  EXPECT_EQ(device.stats().kernel_launches, 1);
}

TEST_F(BasecampTest, CloudFpgaTargetWorks) {
  rr::Config cfg;
  cfg.ncells = 16;
  rr::Data data = rr::make_data(cfg);
  es::CompileOptions options;
  options.target = "cloudfpga";
  auto result =
      basecamp_.compile_ekl(rr::ekl_source(), rr::bindings(data), options);
  ASSERT_TRUE(result.has_value()) << result.error().message;
  EXPECT_EQ(result->device.name, "cloudfpga");
  // Network-attached: transfers dominated by the 10G link.
  everest::platform::Device device(result->device);
  auto us = basecamp_.deploy_and_run(device, *result);
  ASSERT_TRUE(us.has_value()) << us.error().message;
}
