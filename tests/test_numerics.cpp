// Unit tests for the numerics substrate: tensors, custom number formats
// (fixed point, minifloat, posit), and dense linear algebra.

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/formats.hpp"
#include "numerics/linalg.hpp"
#include "numerics/tensor.hpp"
#include "support/rng.hpp"

namespace en = everest::numerics;

TEST(Tensor, ScalarAndShape) {
  auto s = en::Tensor::scalar(2.5);
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1);
  EXPECT_DOUBLE_EQ(s.flat(0), 2.5);
}

TEST(Tensor, RowMajorIndexing) {
  en::Tensor t(en::Shape{2, 3});
  t(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(t.flat(5), 7.0);
  t(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(t.flat(1), 3.0);
}

TEST(Tensor, Reshape) {
  en::Tensor t(en::Shape{2, 3}, std::vector<double>{1, 2, 3, 4, 5, 6});
  auto r = t.reshaped({3, 2});
  EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  en::Tensor a(en::Shape{2}, std::vector<double>{1, 2});
  en::Tensor b(en::Shape{2}, std::vector<double>{10, 20});
  a += b;
  EXPECT_DOUBLE_EQ(a(0), 11.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1), 44.0);
  en::Tensor c(en::Shape{3});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Tensor, SumAndToString) {
  en::Tensor t(en::Shape{2, 2}, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(t.sum(), 10.0);
  EXPECT_EQ(t.to_string(2), "tensor<2x2>[1, 2, ...]");
}

TEST(Tensor, BadConstruction) {
  EXPECT_THROW(en::Tensor(en::Shape{-1}), std::invalid_argument);
  EXPECT_THROW(en::Tensor(en::Shape{2}, std::vector<double>{1.0}),
               std::invalid_argument);
}

// ------------------------------------------------------------- fixed point

TEST(FixedPoint, ExactValues) {
  en::FixedPointFormat q16_8(16, 8);
  EXPECT_DOUBLE_EQ(q16_8.quantize(1.5), 1.5);        // exactly representable
  EXPECT_DOUBLE_EQ(q16_8.quantize(0.00390625), 1.0 / 256);  // one LSB
  EXPECT_DOUBLE_EQ(q16_8.resolution(), 1.0 / 256);
}

TEST(FixedPoint, RoundsToNearest) {
  en::FixedPointFormat q8_4(8, 4);
  // quantum = 1/16 = 0.0625; 0.03 -> 0.0625*round(0.48) = 0.0
  EXPECT_DOUBLE_EQ(q8_4.quantize(0.03), 0.0);
  EXPECT_DOUBLE_EQ(q8_4.quantize(0.04), 0.0625);
}

TEST(FixedPoint, Saturates) {
  en::FixedPointFormat q8_4(8, 4);
  // signed 8 bits, 4 frac: max code 127 -> 7.9375, min -128 -> -8
  EXPECT_DOUBLE_EQ(q8_4.quantize(100.0), 7.9375);
  EXPECT_DOUBLE_EQ(q8_4.quantize(-100.0), -8.0);
  EXPECT_DOUBLE_EQ(q8_4.max_value(), 7.9375);
  EXPECT_DOUBLE_EQ(q8_4.min_value(), -8.0);
}

TEST(FixedPoint, UnsignedRange) {
  en::FixedPointFormat u8(8, 0, /*is_signed=*/false);
  EXPECT_DOUBLE_EQ(u8.quantize(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(u8.quantize(300.0), 255.0);
}

TEST(FixedPoint, EncodeDecodeBitTrue) {
  en::FixedPointFormat q16_8(16, 8);
  EXPECT_EQ(q16_8.encode(1.0), 256);
  EXPECT_EQ(q16_8.encode(-1.0), -256);
  EXPECT_DOUBLE_EQ(q16_8.decode(384), 1.5);
}

TEST(FixedPoint, InvalidConfig) {
  EXPECT_THROW(en::FixedPointFormat(1, 0), std::invalid_argument);
  EXPECT_THROW(en::FixedPointFormat(64, 0), std::invalid_argument);
}

// --------------------------------------------------------------- minifloat

TEST(MiniFloat, Fp16KnownValues) {
  en::MiniFloatFormat fp16(5, 10);
  EXPECT_DOUBLE_EQ(fp16.quantize(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fp16.quantize(0.5), 0.5);
  // 1 + 2^-11 rounds back to 1 (mantissa has 10 bits).
  EXPECT_DOUBLE_EQ(fp16.quantize(1.0 + std::ldexp(1.0, -11)), 1.0);
  // 1 + 2^-10 is exactly representable.
  double one_ulp = 1.0 + std::ldexp(1.0, -10);
  EXPECT_DOUBLE_EQ(fp16.quantize(one_ulp), one_ulp);
  EXPECT_DOUBLE_EQ(fp16.max_finite(), 65504.0);
}

TEST(MiniFloat, OverflowToInfinity) {
  en::MiniFloatFormat fp16(5, 10);
  EXPECT_TRUE(std::isinf(fp16.quantize(1.0e6)));
  EXPECT_TRUE(std::isinf(fp16.quantize(-1.0e6)));
  EXPECT_LT(fp16.quantize(-1.0e6), 0.0);
}

TEST(MiniFloat, SubnormalsQuantize) {
  en::MiniFloatFormat fp16(5, 10);
  // Smallest subnormal of fp16 is 2^-24.
  double tiny = std::ldexp(1.0, -24);
  EXPECT_DOUBLE_EQ(fp16.quantize(tiny), tiny);
  EXPECT_DOUBLE_EQ(fp16.quantize(tiny * 0.4), 0.0);
}

TEST(MiniFloat, Bfloat16Behaviour) {
  en::MiniFloatFormat bf16(8, 7);
  // bfloat16 keeps the f32 exponent range but only 7 mantissa bits.
  EXPECT_DOUBLE_EQ(bf16.quantize(1.0e30), bf16.quantize(1.0e30));
  EXPECT_FALSE(std::isinf(bf16.quantize(1.0e30)));
  EXPECT_DOUBLE_EQ(bf16.quantize(256.0 + 0.5), 256.0);  // below 1 ulp at 256
}

TEST(MiniFloat, PreservesSpecials) {
  en::MiniFloatFormat f(4, 3);
  EXPECT_TRUE(std::isnan(f.quantize(std::nan(""))));
  EXPECT_DOUBLE_EQ(f.quantize(0.0), 0.0);
}

// -------------------------------------------------------------------- posit

TEST(Posit, KnownEncodings) {
  en::PositFormat p16(16, 1);
  // posit<16,1>: 1.0 encodes as 0x4000.
  EXPECT_EQ(p16.encode(1.0), 0x4000u);
  EXPECT_DOUBLE_EQ(p16.decode(0x4000), 1.0);
  // NaR is 0x8000; zero is 0.
  EXPECT_EQ(p16.encode(0.0), 0u);
  EXPECT_TRUE(std::isnan(p16.decode(0x8000)));
}

TEST(Posit, NegationIsTwosComplement) {
  en::PositFormat p16(16, 1);
  std::uint64_t pos = p16.encode(1.5);
  std::uint64_t neg = p16.encode(-1.5);
  EXPECT_EQ((pos + neg) & 0xFFFFu, 0u);
  EXPECT_DOUBLE_EQ(p16.decode(neg), -1.5);
}

TEST(Posit, ExactSmallIntegers) {
  en::PositFormat p16(16, 1);
  for (double v : {1.0, 2.0, 3.0, 4.0, 0.5, 0.25, 1.5, -2.0, -0.75}) {
    EXPECT_DOUBLE_EQ(p16.quantize(v), v) << "value " << v;
  }
}

TEST(Posit, TaperedPrecision) {
  en::PositFormat p16(16, 1);
  // Near 1.0 posit<16,1> has ~12 fraction bits: error <= 2^-13.
  double x = 1.0001;
  EXPECT_NEAR(p16.quantize(x), x, std::ldexp(1.0, -13));
  // Far from 1.0 the relative error grows (taper).
  double big = 1.0e6;
  double err_big = std::fabs(p16.quantize(big) - big) / big;
  double err_one = std::fabs(p16.quantize(x) - x) / x;
  EXPECT_GT(err_big, err_one);
}

TEST(Posit, RoundTripMonotone) {
  en::PositFormat p8(8, 0);
  everest::support::Pcg32 rng(13);
  double prev = -1.0e9;
  // Quantization must be monotone non-decreasing.
  for (double x = -16.0; x <= 16.0; x += 0.037) {
    double q = p8.quantize(x);
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
  (void)rng;
}

TEST(Posit, SaturatesAtMaxpos) {
  en::PositFormat p8(8, 0);
  // maxpos for posit<8,0> is 64.
  EXPECT_DOUBLE_EQ(p8.quantize(1.0e12), 64.0);
  EXPECT_DOUBLE_EQ(p8.quantize(-1.0e12), -64.0);
  // minpos: tiny values round to minpos (1/64), never to zero.
  EXPECT_DOUBLE_EQ(p8.quantize(1.0e-12), 1.0 / 64.0);
}

TEST(Formats, QuantizeSpanReportsMaxError) {
  en::FixedPointFormat q4(8, 4);
  std::vector<double> xs{0.03, 1.0, 2.551};
  double err = en::quantize_span(q4, xs);
  EXPECT_DOUBLE_EQ(xs[1], 1.0);
  EXPECT_GT(err, 0.0);
  EXPECT_LE(err, q4.resolution() / 2 + 1e-12);
}

// ------------------------------------------------------------------- linalg

TEST(Linalg, MatmulIdentity) {
  auto i3 = en::identity(3);
  en::Tensor a(en::Shape{3, 3});
  everest::support::Pcg32 rng(21);
  for (auto &x : a.data()) x = rng.normal();
  auto prod = en::matmul(a, i3);
  for (std::int64_t i = 0; i < 9; ++i)
    EXPECT_DOUBLE_EQ(prod.flat(i), a.flat(i));
}

TEST(Linalg, MatmulKnown) {
  en::Tensor a(en::Shape{2, 3}, std::vector<double>{1, 2, 3, 4, 5, 6});
  en::Tensor b(en::Shape{3, 2}, std::vector<double>{7, 8, 9, 10, 11, 12});
  auto c = en::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
  EXPECT_THROW(en::matmul(a, a), std::invalid_argument);
}

TEST(Linalg, MatvecAndTranspose) {
  en::Tensor a(en::Shape{2, 2}, std::vector<double>{1, 2, 3, 4});
  en::Tensor x(en::Shape{2}, std::vector<double>{1, 1});
  auto y = en::matvec(a, x);
  EXPECT_DOUBLE_EQ(y(0), 3.0);
  EXPECT_DOUBLE_EQ(y(1), 7.0);
  auto t = en::transpose(a);
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
}

TEST(Linalg, CholeskySolveRecoversSolution) {
  // Build SPD A = B^T B + I and a known x; solve A x = b.
  everest::support::Pcg32 rng(77);
  const std::int64_t n = 8;
  en::Tensor b_mat(en::Shape{n, n});
  for (auto &v : b_mat.data()) v = rng.normal();
  auto a = en::matmul(en::transpose(b_mat), b_mat);
  for (std::int64_t i = 0; i < n; ++i) a(i, i) += 1.0;

  en::Tensor x_true(en::Shape{n});
  for (auto &v : x_true.data()) v = rng.normal();
  auto rhs = en::matvec(a, x_true);

  auto x = en::cholesky_solve(a, rhs);
  ASSERT_TRUE(x.has_value());
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR((*x)(i), x_true(i), 1e-9);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  en::Tensor a(en::Shape{2, 2}, std::vector<double>{0, 1, 1, 0});
  EXPECT_FALSE(en::cholesky(a).has_value());
}

TEST(Linalg, LogDet) {
  en::Tensor a(en::Shape{2, 2}, std::vector<double>{4, 0, 0, 9});
  auto l = en::cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(en::log_det_from_cholesky(*l), std::log(36.0), 1e-12);
}
