// Tests for the virtualized runtime environment: resource manager (Dask-like
// scheduling, load balancing, transfers, rescheduling), the deterministic
// dfg executor, SR-IOV virtualization, and the mARGOt-like autotuner.

#include <gtest/gtest.h>

#include "autotune/autotuner.hpp"
#include "frontend/condrust_parser.hpp"
#include "obs/trace.hpp"
#include "runtime/dfg_executor.hpp"
#include "runtime/resource_manager.hpp"
#include "virt/virt.hpp"

namespace er = everest::runtime;
namespace ev = everest::virt;
namespace ea = everest::autotune;
namespace ef = everest::frontend;
namespace ep = everest::platform;

namespace {

er::ClusterSpec small_cluster(int nodes, bool fpga_on_first = false) {
  er::ClusterSpec c;
  for (int i = 0; i < nodes; ++i) {
    c.nodes.push_back({"node" + std::to_string(i), 4,
                       fpga_on_first && i == 0, 1.0});
  }
  return c;
}

}  // namespace

// ---------------------------------------------------------- resource manager

TEST(ResourceManager, RespectsDependencies) {
  er::ResourceManager rm(small_cluster(2));
  auto a = rm.submit({"a", {}, 10.0});
  ASSERT_TRUE(a.has_value());
  auto b = rm.submit({"b", {a->id}, 10.0});
  ASSERT_TRUE(b.has_value());
  auto report = rm.run();
  ASSERT_TRUE(report.has_value()) << report.error().message;
  const auto &ta = report->tasks.at(a->id);
  const auto &tb = report->tasks.at(b->id);
  EXPECT_GE(tb.start_ms, ta.finish_ms);
}

TEST(ResourceManager, RejectsBadSubmissions) {
  er::ResourceManager rm(small_cluster(1));
  EXPECT_FALSE(rm.submit({"x", {5}, 1.0}).has_value());  // unknown dep
  er::TaskSpec no_variant;
  no_variant.name = "none";
  no_variant.cpu_ms = -1.0;
  no_variant.fpga_ms = -1.0;
  EXPECT_FALSE(rm.submit(no_variant).has_value());
}

TEST(ResourceManager, LoadBalancesIndependentTasks) {
  er::ResourceManager rm(small_cluster(4));
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(rm.submit({"t" + std::to_string(i), {}, 10.0}).has_value());
  }
  auto report = rm.run();
  ASSERT_TRUE(report.has_value());
  // 32 tasks x 10ms over 16 cores => ideal 20ms.
  EXPECT_NEAR(report->makespan_ms, 20.0, 1.0);
  EXPECT_GT(report->avg_core_utilization, 0.9);
}

TEST(ResourceManager, MoreNodesShrinkMakespan) {
  auto run_with = [](int nodes) {
    er::ResourceManager rm(small_cluster(nodes));
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(rm.submit({"t" + std::to_string(i), {}, 5.0}).has_value());
    }
    auto r = rm.run();
    EXPECT_TRUE(r.has_value());
    return r->makespan_ms;
  };
  double m2 = run_with(2), m8 = run_with(8);
  EXPECT_GT(m2, m8 * 3.0);
}

TEST(ResourceManager, PrefersFpgaVariantWhenFaster) {
  er::ResourceManager rm(small_cluster(2, /*fpga_on_first=*/true));
  er::TaskSpec t{"accel", {}, 100.0};
  t.fpga_ms = 5.0;
  auto f = rm.submit(t);
  ASSERT_TRUE(f.has_value());
  auto report = rm.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->tasks.at(f->id).used_fpga);
  EXPECT_EQ(report->tasks.at(f->id).node, "node0");
}

TEST(ResourceManager, FpgaOnlyTaskSchedulesOntoFpgaWithPositiveDuration) {
  // cpu_ms < 0 with fpga_ms >= 0 is an FPGA-only task (submit() accepts
  // it). The scheduler must place it on an FPGA node with used_fpga set and
  // a positive duration — the negative cpu_ms is "infeasible on CPU", not a
  // duration. Regression: the candidate duration used to go negative, so
  // the FPGA variant was never selected and the task "finished" before it
  // started.
  er::ResourceManager rm(small_cluster(2, /*fpga_on_first=*/true));
  er::TaskSpec t{"fpga_only", {}, -1.0};
  t.fpga_ms = 5.0;
  auto f = rm.submit(t);
  ASSERT_TRUE(f.has_value());
  auto report = rm.run();
  ASSERT_TRUE(report.has_value()) << report.error().message;
  const auto &o = report->tasks.at(f->id);
  EXPECT_TRUE(o.used_fpga);
  EXPECT_EQ(o.node, "node0");
  EXPECT_GE(o.start_ms, 0.0);
  EXPECT_DOUBLE_EQ(o.finish_ms - o.start_ms, 5.0);
}

TEST(ResourceManager, FpgaOnlyChainHasPositiveMakespan) {
  er::ResourceManager rm(small_cluster(2, /*fpga_on_first=*/true));
  er::TaskId prev = -1;
  for (int i = 0; i < 3; ++i) {
    er::TaskSpec t{"f" + std::to_string(i),
                   prev < 0 ? std::vector<er::TaskId>{}
                            : std::vector<er::TaskId>{prev},
                   -1.0};
    t.fpga_ms = 10.0;
    auto f = rm.submit(t);
    ASSERT_TRUE(f.has_value());
    prev = f->id;
  }
  auto report = rm.run();
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_DOUBLE_EQ(report->makespan_ms, 30.0);
  for (const auto &[id, o] : report->tasks) {
    EXPECT_TRUE(o.used_fpga);
    EXPECT_GT(o.finish_ms, o.start_ms);
    EXPECT_GE(o.start_ms, 0.0);
  }
}

TEST(ResourceManager, FpgaOnlyTaskWithoutFpgaNodeIsRejected) {
  er::ResourceManager rm(small_cluster(2));  // no FPGA anywhere
  er::TaskSpec t{"fpga_only", {}, -1.0};
  t.fpga_ms = 5.0;
  ASSERT_TRUE(rm.submit(t).has_value());
  auto report = rm.run();
  ASSERT_FALSE(report.has_value());
  EXPECT_EQ(report.error().code_enum(),
            everest::support::ErrorCode::ResourceExhausted);
}

TEST(ResourceManager, FpgaOnlyDurationFeedsHeftRank) {
  // One node, one core: HEFT dispatch order is exactly rank order, so the
  // 50 ms FPGA-only task must run before the independent 10 ms CPU task.
  // Regression: mean_duration() used the negative cpu_ms for FPGA-only
  // tasks, collapsing their rank below every CPU task's.
  er::ClusterSpec c;
  c.nodes.push_back({"node0", 1, true, 1.0});
  er::ResourceManager rm(c);
  er::TaskSpec accel{"accel", {}, -1.0};
  accel.fpga_ms = 50.0;
  auto fa = rm.submit(accel);
  ASSERT_TRUE(fa.has_value());
  auto fb = rm.submit({"host", {}, 10.0});
  ASSERT_TRUE(fb.has_value());
  auto report = rm.run();  // HEFT is the default policy
  ASSERT_TRUE(report.has_value()) << report.error().message;
  EXPECT_DOUBLE_EQ(report->tasks.at(fa->id).start_ms, 0.0);
  EXPECT_DOUBLE_EQ(report->tasks.at(fb->id).start_ms, 50.0);
  EXPECT_DOUBLE_EQ(report->makespan_ms, 60.0);
}

TEST(ResourceManager, HardFpgaRequirementConstrainsPlacement) {
  er::ResourceManager rm(small_cluster(3, /*fpga_on_first=*/true));
  er::TaskSpec t{"must_fpga", {}, 10.0};
  t.needs_fpga = true;
  t.fpga_ms = 10.0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(rm.submit(t).has_value());
  }
  auto report = rm.run();
  ASSERT_TRUE(report.has_value());
  for (const auto &[id, outcome] : report->tasks)
    EXPECT_EQ(outcome.node, "node0");
}

TEST(ResourceManager, TransferAwareBeatsNaivePlacement) {
  // A chain with huge intermediate data: keeping it on one node avoids
  // transfers; naive placement bounces it around.
  er::ClusterSpec cluster = small_cluster(4);
  cluster.net_gbps = 1.0;  // slow network magnifies the effect

  auto build = [&](er::ResourceManager &rm) {
    er::TaskSpec producer{"p", {}, 20.0};
    producer.output_bytes = 500'000'000;  // 0.5 GB
    auto p = rm.submit(producer);
    ASSERT_TRUE(p.has_value());
    // Consumers also produce large outputs consumed by one sink.
    std::vector<er::TaskId> mids;
    for (int i = 0; i < 3; ++i) {
      er::TaskSpec mid{"m" + std::to_string(i), {p->id}, 20.0};
      mid.output_bytes = 500'000'000;
      auto m = rm.submit(mid);
      ASSERT_TRUE(m.has_value());
      mids.push_back(m->id);
    }
    er::TaskSpec sink{"s", mids, 5.0};
    ASSERT_TRUE(rm.submit(sink).has_value());
  };

  er::ResourceManager aware(cluster), naive(cluster);
  build(aware);
  build(naive);
  er::SchedulerOptions aware_opt;
  er::SchedulerOptions naive_opt;
  naive_opt.transfer_aware = false;
  auto ra = aware.run(aware_opt);
  auto rn = naive.run(naive_opt);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rn.has_value());
  EXPECT_LE(ra->makespan_ms, rn->makespan_ms);
  EXPECT_LE(ra->bytes_transferred, rn->bytes_transferred);
}

TEST(ResourceManager, HeftBeatsFifoOnHeterogeneousDag) {
  // Critical-path-heavy DAG: HEFT should prioritize the long chain.
  auto build = [&](er::ResourceManager &rm) {
    // Long chain of 6 x 20ms, plus 12 independent 10ms tasks.
    er::TaskId prev = -1;
    for (int i = 0; i < 6; ++i) {
      er::TaskSpec t{"chain" + std::to_string(i),
                     prev < 0 ? std::vector<er::TaskId>{}
                              : std::vector<er::TaskId>{prev},
                     20.0};
      auto f = rm.submit(t);
      ASSERT_TRUE(f.has_value());
      prev = f->id;
    }
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(rm.submit({"ind" + std::to_string(i), {}, 10.0}).has_value());
    }
  };
  er::ClusterSpec cluster = small_cluster(1);
  cluster.nodes[0].cores = 2;
  er::ResourceManager heft(cluster), fifo(cluster);
  build(heft);
  build(fifo);
  er::SchedulerOptions fifo_opt;
  fifo_opt.policy = er::SchedulerOptions::Policy::Fifo;
  auto rh = heft.run();
  auto rf = fifo.run(fifo_opt);
  ASSERT_TRUE(rh.has_value());
  ASSERT_TRUE(rf.has_value());
  EXPECT_LE(rh->makespan_ms, rf->makespan_ms);
}

TEST(ResourceManager, ReschedulesAfterNodeFailure) {
  er::ResourceManager rm(small_cluster(2));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rm.submit({"t" + std::to_string(i), {}, 50.0}).has_value());
  }
  auto healthy = rm.run();
  ASSERT_TRUE(healthy.has_value());

  // dies mid-first-wave
  rm.inject_failure({"node0", 25.0, er::FaultKind::Crash});
  auto degraded = rm.run();
  ASSERT_TRUE(degraded.has_value());
  EXPECT_GT(degraded->rescheduled_tasks, 0);
  EXPECT_TRUE(degraded->degraded());
  EXPECT_EQ(degraded->faulted_nodes, std::vector<std::string>{"node0"});
  EXPECT_GT(degraded->makespan_ms, healthy->makespan_ms);
  for (const auto &[id, outcome] : degraded->tasks) {
    if (outcome.node == "node0") {
      EXPECT_LE(outcome.finish_ms, 25.0);
    }
  }
}

TEST(ResourceManager, DrainFinishesRunningTasksButStartsNoneNew) {
  // Crash kills in-flight work; Drain lets it finish but refuses new starts.
  // 16 x 50ms on 8 cores => two waves; the fault at 25ms lands mid-wave-1.
  auto build = [](er::ResourceManager &rm) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(rm.submit({"t" + std::to_string(i), {}, 50.0}).has_value());
    }
  };
  er::ResourceManager crash(small_cluster(2)), drain(small_cluster(2));
  build(crash);
  build(drain);
  crash.inject_failure({"node0", 25.0, er::FaultKind::Crash});
  drain.inject_failure({"node0", 25.0, er::FaultKind::Drain});
  auto rc = crash.run();
  auto rd = drain.run();
  ASSERT_TRUE(rc.has_value());
  ASSERT_TRUE(rd.has_value());

  // Under drain, tasks already running at 25ms run past the fault instant but
  // nothing *starts* afterwards; under crash, nothing may *finish* after it.
  bool drained_past_fault = false;
  for (const auto &[id, outcome] : rd->tasks) {
    if (outcome.node == "node0") {
      EXPECT_LT(outcome.start_ms, 25.0);
      drained_past_fault |= outcome.finish_ms > 25.0;
    }
  }
  EXPECT_TRUE(drained_past_fault);
  for (const auto &[id, outcome] : rc->tasks) {
    if (outcome.node == "node0") {
      EXPECT_LE(outcome.finish_ms, 25.0);
    }
  }
  // Drain loses no completed work, so it recovers at least as fast.
  EXPECT_LE(rd->makespan_ms, rc->makespan_ms);
  EXPECT_GT(rd->rescheduled_tasks, 0);
}

TEST(ResourceManager, CrashRestartIsKeyedOnTheKillingFault) {
  // Two faults: a decoy crash at t=5 on a node the victim never ran on, and
  // the crash at t=50 that actually kills it. The restart must wait for the
  // killing fault — regression: it used to restart after the *earliest*
  // fault anywhere on the cluster (t=5 here).
  er::ClusterSpec c;
  c.nodes.push_back({"decoy", 1, false, 1.0});
  c.nodes.push_back({"fast", 1, false, 2.0});
  c.nodes.push_back({"backup", 1, false, 1.0});
  er::ResourceManager rm(c);
  auto big = rm.submit({"big", {}, 120.0});    // fast: 60 ms, others: 120 ms
  ASSERT_TRUE(big.has_value());
  auto small = rm.submit({"small", {}, 10.0});
  ASSERT_TRUE(small.has_value());
  rm.inject_failures({{"decoy", 5.0, er::FaultKind::Crash},
                      {"fast", 50.0, er::FaultKind::Crash}});
  auto report = rm.run();
  ASSERT_TRUE(report.has_value()) << report.error().message;
  const auto &o = report->tasks.at(big->id);
  // First pass puts "big" on "fast" ([0,60] past the t=50 crash); the
  // re-submission must not start before t=50 even though "decoy" crashed
  // at t=5.
  EXPECT_EQ(o.node, "backup");
  EXPECT_GE(o.start_ms, 50.0);
  EXPECT_EQ(o.attempts, 2);
  EXPECT_TRUE(report->degraded());
}

TEST(ResourceManager, InjectFailuresAppliesWholePlan) {
  er::ResourceManager rm(small_cluster(3));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(rm.submit({"t" + std::to_string(i), {}, 50.0}).has_value());
  }
  rm.inject_failures({{"node0", 25.0, er::FaultKind::Crash},
                      {"node1", 40.0, er::FaultKind::Drain}});
  auto report = rm.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_GT(report->rescheduled_tasks, 0);
  EXPECT_TRUE(report->degraded());
  EXPECT_EQ(report->faulted_nodes,
            (std::vector<std::string>{"node0", "node1"}));
  // Every task still completes despite two of three nodes faulting.
  EXPECT_EQ(report->tasks.size(), rm.task_count());
}

TEST(ResourceManager, NodeTimelineCoversEveryPlacement) {
  er::ResourceManager rm(small_cluster(3));
  auto a = rm.submit({"a", {}, 10.0});
  ASSERT_TRUE(a.has_value());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        rm.submit({"t" + std::to_string(i), {a->id}, 10.0}).has_value());
  }
  auto report = rm.run();
  ASSERT_TRUE(report.has_value());

  std::size_t intervals = 0;
  for (const auto &[node, timeline] : report->node_timeline) {
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const auto &iv = timeline[i];
      EXPECT_LT(iv.start_ms, iv.end_ms);
      // Sorted by start within each node.
      if (i > 0) {
        EXPECT_GE(iv.start_ms, timeline[i - 1].start_ms);
      }
      // Interval matches the task outcome it describes.
      const auto &outcome = report->tasks.at(iv.task);
      EXPECT_EQ(outcome.node, node);
      EXPECT_DOUBLE_EQ(outcome.start_ms, iv.start_ms);
      EXPECT_DOUBLE_EQ(outcome.finish_ms, iv.end_ms);
      ++intervals;
    }
  }
  EXPECT_EQ(intervals, report->tasks.size());
}

TEST(ResourceManager, RunExportsTaskSpansOnSimulatedTimeline) {
  er::ResourceManager rm(small_cluster(2));
  auto a = rm.submit({"produce", {}, 10.0});
  ASSERT_TRUE(a.has_value());
  er::TaskSpec big{"consume", {a->id}, 10.0};
  auto b = rm.submit(big);
  ASSERT_TRUE(b.has_value());

  everest::obs::TraceRecorder recorder;
  auto report = rm.run({}, &recorder);
  ASSERT_TRUE(report.has_value());

  std::size_t task_spans = 0;
  for (const auto &ev : recorder.events()) {
    if (ev.category != "resman.task") continue;
    ++task_spans;
    // Trace timestamps are the schedule times scaled ms -> us.
    bool matched = false;
    for (const auto &[id, outcome] : report->tasks) {
      if (ev.track == outcome.node &&
          ev.start_us == outcome.start_ms * 1000.0 &&
          ev.duration_us ==
              (outcome.finish_ms - outcome.start_ms) * 1000.0) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << ev.name;
  }
  EXPECT_EQ(task_spans, report->tasks.size());
  EXPECT_EQ(recorder.counter("resman.tasks").value(),
            static_cast<std::int64_t>(report->tasks.size()));
  EXPECT_DOUBLE_EQ(recorder.gauge("resman.makespan_ms").value(),
                   report->makespan_ms);
}

// -------------------------------------------------------------- dfg executor

class DfgExecutorTest : public ::testing::Test {
protected:
  void SetUp() override {
    registry_.register_node("double_it", [](const auto &in) {
      return er::Record{(*in[0])[0] * 2.0};
    });
    registry_.register_node("add_pair", [](const auto &in) {
      return er::Record{(*in[0])[0] + (*in[1])[0]};
    });
    registry_.register_fold("running_sum", er::Record{0.0},
                            [](const er::Record &state, const auto &in) {
                              return er::Record{state[0] + (*in[0])[0]};
                            });
  }
  er::NodeRegistry registry_;
};

TEST_F(DfgExecutorTest, ExecutesPipeline) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let doubled = double_it(xs);
    let total = fold running_sum(doubled);
    return total;
}
)");
  ASSERT_TRUE(m.has_value()) << m.error().message;
  std::map<std::string, er::Stream> inputs;
  inputs["xs"] = {{1.0}, {2.0}, {3.0}};
  auto out = er::execute_dfg(**m, registry_, inputs);
  ASSERT_TRUE(out.has_value()) << out.error().message;
  ASSERT_EQ(out->at("total").size(), 1u);
  EXPECT_DOUBLE_EQ(out->at("total")[0][0], 12.0);
}

TEST_F(DfgExecutorTest, DeterministicAcrossWorkerCounts) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>, ys: Stream<f64>) -> Stream<f64> {
    let sums = add_pair(xs, ys);
    let doubled = double_it(sums);
    let total = fold running_sum(doubled);
    return total;
}
)");
  ASSERT_TRUE(m.has_value());
  std::map<std::string, er::Stream> inputs;
  for (int i = 0; i < 500; ++i) {
    inputs["xs"].push_back({static_cast<double>(i)});
    inputs["ys"].push_back({static_cast<double>(i) * 0.5});
  }
  auto r1 = er::execute_dfg(**m, registry_, inputs, 1);
  auto r4 = er::execute_dfg(**m, registry_, inputs, 4);
  auto r16 = er::execute_dfg(**m, registry_, inputs, 16);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r4.has_value());
  ASSERT_TRUE(r16.has_value());
  EXPECT_EQ(r1->at("total"), r4->at("total"));
  EXPECT_EQ(r1->at("total"), r16->at("total"));
}

TEST_F(DfgExecutorTest, StatsAndErrors) {
  auto m = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let d = double_it(xs);
    return d;
}
)");
  ASSERT_TRUE(m.has_value());
  std::map<std::string, er::Stream> inputs;
  inputs["xs"] = {{1.0}, {2.0}};
  er::DfgRunStats stats;
  auto out = er::execute_dfg(**m, registry_, inputs, 2, &stats);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(stats.node_invocations, 2u);
  EXPECT_EQ(stats.elements, 2u);

  // Missing input stream.
  EXPECT_FALSE(er::execute_dfg(**m, registry_, {}, 1).has_value());
  // Unregistered callee.
  auto m2 = ef::parse_condrust(R"(
fn pipe(xs: Stream<f64>) -> Stream<f64> {
    let d = nonexistent(xs);
    return d;
}
)");
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(er::execute_dfg(**m2, registry_, inputs, 1).has_value());
}

// ----------------------------------------------------------- virtualization

TEST(Virt, VmLifecycleAndOversubscription) {
  ev::VirtNode node("phys0", 16, {ep::alveo_u55c()});
  auto vm1 = node.create_vm("vm1", 8);
  ASSERT_TRUE(vm1.has_value());
  auto vm2 = node.create_vm("vm2", 8);
  ASSERT_TRUE(vm2.has_value());
  EXPECT_FALSE(node.create_vm("vm3", 1).has_value());  // cores exhausted
  ASSERT_TRUE(node.destroy_vm(*vm2).is_ok());
  EXPECT_TRUE(node.create_vm("vm3", 4).has_value());
}

TEST(Virt, SriovPoolIsStaticAndExhaustible) {
  ev::VirtNode node("phys0", 32, {ep::alveo_u55c()}, /*max_vfs_per_card=*/2);
  auto vm = node.create_vm("vm", 4);
  ASSERT_TRUE(vm.has_value());
  auto vf1 = node.attach_vf(*vm, 0);
  auto vf2 = node.attach_vf(*vm, 0);
  ASSERT_TRUE(vf1.has_value());
  ASSERT_TRUE(vf2.has_value());
  EXPECT_FALSE(node.attach_vf(*vm, 0).has_value());  // static pool limit
  // Dynamic unplug mitigates it.
  ASSERT_TRUE(node.detach_vf(*vm, *vf1).is_ok());
  EXPECT_TRUE(node.attach_vf(*vm, 0).has_value());
  EXPECT_GT(node.plug_unplug_ms(), 0.0);
}

TEST(Virt, SriovNearNativeEmulatedSlow) {
  ev::VirtNode node("phys0", 32, {ep::alveo_u55c()}, 4);
  auto vm = node.create_vm("vm", 4);
  ASSERT_TRUE(vm.has_value());
  auto vf_fast = node.attach_vf(*vm, 0, ev::IoMode::SrIov);
  auto vf_slow = node.attach_vf(*vm, 0, ev::IoMode::Emulated);
  ASSERT_TRUE(vf_fast.has_value());
  ASSERT_TRUE(vf_slow.has_value());

  auto transfer = [&](ep::Device *dev) {
    auto bo = dev->alloc(256 * 1024 * 1024);
    EXPECT_TRUE(bo.has_value());
    EXPECT_TRUE(dev->sync_to_device(*bo).is_ok());
    return dev->now_us();
  };
  auto d_native = transfer(&node.native_device(0));
  auto fast_dev = node.vm_device(*vm, *vf_fast);
  auto slow_dev = node.vm_device(*vm, *vf_slow);
  ASSERT_TRUE(fast_dev.has_value());
  ASSERT_TRUE(slow_dev.has_value());
  auto d_sriov = transfer(*fast_dev);
  auto d_emu = transfer(*slow_dev);

  EXPECT_LT(d_sriov / d_native, 1.10);  // near-native
  EXPECT_GT(d_emu / d_native, 2.0);     // emulation is costly
}

TEST(Virt, OwnershipEnforced) {
  ev::VirtNode node("phys0", 32, {ep::alveo_u55c()}, 4);
  auto vm1 = node.create_vm("vm1", 4);
  auto vm2 = node.create_vm("vm2", 4);
  ASSERT_TRUE(vm1.has_value());
  ASSERT_TRUE(vm2.has_value());
  auto vf = node.attach_vf(*vm1, 0);
  ASSERT_TRUE(vf.has_value());
  EXPECT_FALSE(node.vm_device(*vm2, *vf).has_value());
  EXPECT_FALSE(node.detach_vf(*vm2, *vf).is_ok());
}

TEST(Virt, StatusJsonReflectsState) {
  ev::VirtNode node("phys0", 16, {ep::alveo_u55c(), ep::alveo_u280()}, 3);
  auto vm = node.create_vm("vm", 4);
  ASSERT_TRUE(vm.has_value());
  ASSERT_TRUE(node.attach_vf(*vm, 1).has_value());
  auto j = node.status_json();
  EXPECT_EQ(j["node"].as_string(), "phys0");
  EXPECT_EQ(j["allocated_vcpus"].as_int(), 4);
  EXPECT_EQ(j["cards"].size(), 2u);
  EXPECT_EQ(j["cards"][1]["attached_vfs"].as_int(), 1);
  EXPECT_EQ(j["cards"][1]["max_vfs"].as_int(), 3);
}

// ----------------------------------------------------------------- autotuner

TEST(Autotuner, SelectsByRankUnderConstraints) {
  ea::Autotuner tuner;
  tuner.add_knowledge({{{"variant", 0}}, {{"time_ms", 100}, {"error", 0.01}}});
  tuner.add_knowledge({{{"variant", 1}}, {{"time_ms", 20}, {"error", 0.08}}});
  tuner.add_knowledge({{{"variant", 2}}, {{"time_ms", 50}, {"error", 0.03}}});
  tuner.add_constraint({"error", ea::Constraint::Kind::LessEqual, 0.05, 2});
  tuner.set_rank({"time_ms", false});
  auto best = tuner.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->knobs.at("variant"), 2.0);
}

TEST(Autotuner, MissingConstrainedMetricIsInfeasible) {
  // A point that never measured a constrained metric used to read as 0.0,
  // trivially passing any LessEqual bound and beating measured points.
  ea::Autotuner tuner;
  tuner.add_knowledge({{{"v", 0}}, {{"time_ms", 50}, {"error", 0.02}}});
  tuner.add_knowledge({{{"v", 1}}, {{"time_ms", 10}}});  // no error metric
  tuner.add_constraint({"error", ea::Constraint::Kind::LessEqual, 0.05, 2});
  tuner.set_rank({"time_ms", false});
  auto best = tuner.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->knobs.at("v"), 0.0)
      << "unmeasured point must not satisfy the error constraint";
  EXPECT_EQ(tuner.last_relaxations(), 0);
}

TEST(Autotuner, MissingRankMetricRanksLast) {
  // An absent rank metric used to read as 0.0 and win any minimization.
  ea::Autotuner tuner;
  tuner.add_knowledge({{{"v", 0}}, {{"error", 0.01}}});  // no time_ms
  tuner.add_knowledge({{{"v", 1}}, {{"time_ms", 40}, {"error", 0.02}}});
  tuner.set_rank({"time_ms", false});
  auto best = tuner.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->knobs.at("v"), 1.0)
      << "a measured point must outrank an unmeasured one";

  // All points unmeasured: selection still succeeds (first feasible wins).
  ea::Autotuner bare;
  bare.add_knowledge({{{"v", 7}}, {{"error", 0.01}}});
  bare.set_rank({"time_ms", false});
  auto fallback = bare.select();
  ASSERT_TRUE(fallback.has_value());
  EXPECT_DOUBLE_EQ(fallback->knobs.at("v"), 7.0);
}

TEST(Autotuner, RelaxesLowPriorityConstraints) {
  ea::Autotuner tuner;
  tuner.add_knowledge({{{"v", 0}}, {{"time_ms", 10}, {"error", 0.5}}});
  tuner.add_constraint({"error", ea::Constraint::Kind::LessEqual, 0.1, 1});
  tuner.set_rank({"time_ms", false});
  auto best = tuner.select();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(tuner.last_relaxations(), 1);
}

TEST(Autotuner, AdaptsToObservedSlowdown) {
  // Point A is expected-fastest; observations reveal a 10x slowdown (e.g.
  // the FPGA variant lost its node), so the tuner switches to point B.
  ea::Autotuner tuner;
  tuner.add_knowledge({{{"v", 0}}, {{"time_ms", 10}}});
  tuner.add_knowledge({{{"v", 1}}, {{"time_ms", 40}}});
  tuner.set_rank({"time_ms", false});
  auto first = tuner.select();
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->knobs.at("v"), 0.0);

  for (int i = 0; i < 12; ++i) tuner.observe("time_ms", 100.0);
  EXPECT_GT(tuner.correction("time_ms"), 5.0);
  // Correction applies globally; both inflate, but relative order is what a
  // per-variant environment shift changes. Model the environment shift by
  // feeding knowledge of the degraded variant:
  ea::Autotuner shifted;
  shifted.add_knowledge({{{"v", 0}}, {{"time_ms", 100}}});  // degraded
  shifted.add_knowledge({{{"v", 1}}, {{"time_ms", 40}}});
  shifted.set_rank({"time_ms", false});
  auto second = shifted.select();
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->knobs.at("v"), 1.0);
}

TEST(Autotuner, FailsWithoutKnowledge) {
  ea::Autotuner tuner;
  EXPECT_FALSE(tuner.select().has_value());
}

TEST(Autotuner, SlidingMonitorWindow) {
  ea::SlidingMonitor mon(3);
  mon.push(1);
  mon.push(2);
  mon.push(3);
  mon.push(10);
  EXPECT_EQ(mon.count(), 3u);
  EXPECT_DOUBLE_EQ(mon.mean(), 5.0);
  EXPECT_DOUBLE_EQ(mon.last(), 10.0);
}

// ---------------------------------------------- autotuner x libvirt (§VI-B/C)

TEST(Autotuner, UsesLibvirtStatusForDecisions) {
  // Paper: "the node where the hypervisor is installed can respond to
  // queries about available resources ... The autotuner can use this feature
  // to make decisions." Knowledge has an FPGA variant; whether it is
  // feasible depends on the node's VF availability, queried via the
  // libvirt-like status API.
  ev::VirtNode node("phys0", 16, {ep::alveo_u55c()}, /*max_vfs_per_card=*/1);
  auto vm_other = node.create_vm("tenant", 4).value();
  auto vf_taken = node.attach_vf(vm_other, 0).value();

  auto build_tuner = [&](bool fpga_available) {
    ea::Autotuner tuner;
    tuner.add_knowledge({{{"variant", 0}}, {{"time_ms", 40.0}, {"fpga", 0.0}}});
    tuner.add_knowledge({{{"variant", 1}}, {{"time_ms", 5.0}, {"fpga", 1.0}}});
    // Constraint derived from the libvirt query: fpga-requiring points are
    // only feasible when a VF is free.
    tuner.add_constraint({"fpga", ea::Constraint::Kind::LessEqual,
                          fpga_available ? 1.0 : 0.0, 5});
    tuner.set_rank({"time_ms", false});
    return tuner;
  };

  auto status = node.status();
  bool vf_free = status.cards[0].attached_vfs < status.cards[0].max_vfs;
  EXPECT_FALSE(vf_free);  // the single VF is taken
  auto constrained = build_tuner(vf_free).select();
  ASSERT_TRUE(constrained.has_value());
  EXPECT_DOUBLE_EQ(constrained->knobs.at("variant"), 0.0);  // cpu fallback

  // The tenant releases its VF: the query now reports capacity and the
  // tuner switches to the FPGA variant.
  ASSERT_TRUE(node.detach_vf(vm_other, vf_taken).is_ok());
  status = node.status();
  vf_free = status.cards[0].attached_vfs < status.cards[0].max_vfs;
  EXPECT_TRUE(vf_free);
  auto free_pick = build_tuner(vf_free).select();
  ASSERT_TRUE(free_pick.has_value());
  EXPECT_DOUBLE_EQ(free_pick->knobs.at("variant"), 1.0);
}
