// everest::serve::Cluster tests: consistent-hash ring determinism, balance
// and minimal reshuffle; byte-identity of sharded serving against a single
// node; load-aware forwarding priced through the network model; front-door
// failover when nodes shed; and VF elasticity via autoscale(). Labeled
// "concurrency" + "serving" so the tsan and asan presets both run the
// cluster's dispatcher threads and concurrent submitters.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "frontend/condrust_parser.hpp"
#include "platform/network.hpp"
#include "serve/cluster.hpp"

namespace es = everest::serve;
namespace er = everest::runtime;
namespace ep = everest::platform;
namespace esup = everest::support;

namespace {

constexpr const char *kPipe = R"(
fn serve_pipe(xs: Stream<f64>) -> Stream<f64> {
    let scaled = mul2(xs);
    let biased = add1(scaled);
    return biased;
}
)";

std::shared_ptr<er::NodeRegistry> pipe_registry() {
  auto registry = std::make_shared<er::NodeRegistry>();
  registry->register_node("mul2",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v *= 2.0;
                            return out;
                          });
  registry->register_node("add1",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v += 1.0;
                            return out;
                          });
  return registry;
}

std::shared_ptr<const everest::ir::Module> pipe_graph() {
  auto parsed = everest::frontend::parse_condrust(kPipe);
  if (!parsed) {
    ADD_FAILURE() << parsed.error().message;
    return nullptr;
  }
  return *parsed;
}

std::unique_ptr<es::Cluster> make_cluster(es::ClusterOptions options) {
  auto cluster = es::Cluster::create(pipe_graph(), pipe_registry(), options);
  EXPECT_TRUE(cluster.has_value())
      << (cluster ? "" : cluster.error().message);
  return cluster ? std::move(*cluster) : nullptr;
}

es::Request make_request(const std::string &tenant, double value) {
  es::Request request;
  request.tenant = tenant;
  request.inputs["xs"] = {value, value * 0.5};
  return request;
}

}  // namespace

// --------------------------------------------------------------- hash ring

TEST(HashRing, RoutingIsDeterministic) {
  es::HashRing a(8, 96);
  es::HashRing b(8, 96);
  for (int t = 0; t < 64; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    EXPECT_EQ(a.route(tenant), b.route(tenant));
    EXPECT_EQ(a.replicas(tenant, 3), b.replicas(tenant, 3));
  }
}

TEST(HashRing, ReplicasAreDistinctAndLedByThePrimary) {
  es::HashRing ring(8, 96);
  for (int t = 0; t < 64; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    auto replicas = ring.replicas(tenant, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas.front(), ring.route(tenant));
    std::sort(replicas.begin(), replicas.end());
    EXPECT_EQ(std::unique(replicas.begin(), replicas.end()), replicas.end());
  }
  // Asking for more candidates than nodes clamps to the node count.
  EXPECT_EQ(ring.replicas("tenant-0", 99).size(), 8u);
  EXPECT_EQ(es::HashRing(1, 16).replicas("tenant-0", 3).size(), 1u);
}

TEST(HashRing, SpreadsTenantsAcrossAllNodes) {
  es::HashRing ring(8, 96);
  std::map<int, int> primaries;
  const int kTenants = 512;
  for (int t = 0; t < kTenants; ++t)
    primaries[ring.route("tenant-" + std::to_string(t))]++;
  ASSERT_EQ(primaries.size(), 8u) << "every node must own some tenants";
  for (const auto &[node, count] : primaries) {
    EXPECT_GT(count, kTenants / 8 / 4)
        << "node " << node << " owns far too few tenants";
    EXPECT_LT(count, kTenants / 8 * 4)
        << "node " << node << " owns far too many tenants";
  }
}

TEST(HashRing, GrowingTheClusterOnlyRemapsToTheNewNode) {
  // Consistent hashing's defining property: adding node N to an N-node ring
  // only moves the tenants whose arc the new node's points claim — every
  // tenant either keeps its primary or moves to the NEW node, never between
  // old nodes.
  es::HashRing before(7, 96);
  es::HashRing after(8, 96);
  int moved = 0;
  const int kTenants = 512;
  for (int t = 0; t < kTenants; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const int old_node = before.route(tenant);
    const int new_node = after.route(tenant);
    if (old_node != new_node) {
      EXPECT_EQ(new_node, 7) << "tenant moved between pre-existing nodes";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kTenants / 4) << "reshuffle should be ~1/8 of tenants";
}

// ----------------------------------------------------------------- cluster

TEST(Cluster, ShardedOutputsAreByteIdenticalToSingleNode) {
  const int kTenants = 16;
  const int kPerTenant = 4;
  std::map<int, std::map<std::string, er::Record>> reference;
  for (int nodes : {1, 4}) {
    es::ClusterOptions options;
    options.nodes = nodes;
    options.replicas = 2;
    options.server.batch.max_batch = 4;
    auto cluster = make_cluster(options);
    ASSERT_NE(cluster, nullptr);
    std::vector<std::pair<int, std::future<es::Response>>> futures;
    for (int r = 0; r < kPerTenant; ++r) {
      for (int t = 0; t < kTenants; ++t) {
        const int index = r * kTenants + t;
        auto submitted = cluster->submit(make_request(
            "tenant-" + std::to_string(t), static_cast<double>(index)));
        ASSERT_TRUE(submitted.has_value());
        futures.emplace_back(index, std::move(*submitted));
      }
    }
    cluster->start();
    cluster->drain();
    std::map<int, std::map<std::string, er::Record>> outputs;
    for (auto &[index, future] : futures) {
      es::Response response = future.get();
      ASSERT_TRUE(response.status.is_ok()) << response.status.error().message;
      outputs[index] = response.outputs;
    }
    cluster->stop();
    if (nodes == 1) {
      reference = std::move(outputs);
    } else {
      EXPECT_EQ(outputs, reference)
          << "sharded outputs differ from the single-node run";
    }
  }
}

TEST(Cluster, ForwardingIsPricedByTheNetworkModel) {
  es::ClusterOptions options;
  options.nodes = 4;
  auto cluster = make_cluster(options);
  ASSERT_NE(cluster, nullptr);
  // The forward price is the model's round trip: request out, response back.
  const double one_way =
      ep::message_seconds(options.network, options.request_bytes) * 1e6;
  EXPECT_DOUBLE_EQ(cluster->forward_cost_us(options.request_bytes),
                   2.0 * one_way);
  EXPECT_GT(cluster->forward_cost_us(options.request_bytes),
            2.0 * options.network.latency_us);
  // More bytes cost more fabric time.
  EXPECT_GT(cluster->forward_cost_us(1 << 20),
            cluster->forward_cost_us(4'096));
  cluster->stop();
}

TEST(Cluster, BackloggedPrimarySpillsToReplicasAndBooksTheFabricTime) {
  es::ClusterOptions options;
  options.nodes = 2;
  options.replicas = 2;
  options.server.batch.max_batch = 4;
  // Make queueing expensive relative to the fabric round trip so a single
  // hot tenant spills from its primary onto the replica.
  options.service_estimate_us = 500.0;
  auto cluster = make_cluster(options);
  ASSERT_NE(cluster, nullptr);
  const std::string tenant = "hot-tenant";
  const int primary = cluster->primary_node(tenant);
  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 64; ++i) {
    auto submitted =
        cluster->submit(make_request(tenant, static_cast<double>(i)));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  cluster->start();
  cluster->drain();
  for (auto &future : futures) EXPECT_TRUE(future.get().status.is_ok());
  auto stats = cluster->stats();
  cluster->stop();
  EXPECT_GT(stats.forwarded, 0) << "hot tenant never spilled off its primary";
  std::int64_t forwarded_in = 0;
  double forward_net_us = 0.0;
  for (const auto &node : stats.nodes) {
    forwarded_in += node.forwarded_in;
    forward_net_us += node.forward_net_us;
  }
  EXPECT_EQ(forwarded_in, stats.forwarded);
  EXPECT_EQ(stats.nodes.at(static_cast<std::size_t>(primary)).forwarded_in, 0)
      << "nothing forwards INTO the tenant's own primary";
  // Every forward is booked at exactly the model's round-trip price.
  EXPECT_DOUBLE_EQ(
      forward_net_us,
      static_cast<double>(stats.forwarded) *
          cluster->forward_cost_us(options.request_bytes));
}

TEST(Cluster, FailsOverAcrossNodesAndShedsOnlyWhenAllCandidatesDo) {
  es::ClusterOptions options;
  options.nodes = 2;
  options.replicas = 2;
  options.server.queue_bound = 4;  // per tenant per node
  // Keep the breaker out of the way: this test is about queue-bound sheds.
  options.node_breaker.failure_threshold = 1'000;
  auto cluster = make_cluster(options);
  ASSERT_NE(cluster, nullptr);
  const std::string tenant = "bounded-tenant";
  int admitted = 0;
  int shed = 0;
  esup::Error last_error = esup::Error::internal("no shed seen");
  for (int i = 0; i < 16; ++i) {
    auto submitted =
        cluster->submit(make_request(tenant, static_cast<double>(i)));
    if (submitted.has_value()) {
      ++admitted;
    } else {
      ++shed;
      last_error = submitted.error();
    }
  }
  // Two nodes x queue_bound 4: the front door fails over to the replica
  // before shedding, so exactly both bounds fill before anything sheds.
  EXPECT_EQ(admitted, 8);
  EXPECT_EQ(shed, 8);
  EXPECT_EQ(last_error.code_enum(), esup::ErrorCode::Unavailable);
  EXPECT_NE(last_error.message.find("every candidate"), std::string::npos)
      << last_error.message;
  auto stats = cluster->stats();
  EXPECT_EQ(stats.admitted, 8);
  EXPECT_EQ(stats.shed, 8);
  EXPECT_EQ(stats.submitted, 16);
  for (const auto &node : stats.nodes)
    EXPECT_EQ(node.routed, 4) << node.name << " queue bound not respected";
  cluster->stop();
}

TEST(Cluster, AutoscaleFollowsTheQueueDepthGauge) {
  es::ClusterOptions options;
  options.nodes = 1;
  options.min_vfs = 1;
  options.max_vfs = 3;
  options.scale_up_depth = 8.0;
  options.scale_down_depth = 1.0;
  auto cluster = make_cluster(options);
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->stats().nodes.at(0).vfs, 1);

  // No backlog: no scale-up.
  auto idle = cluster->autoscale();
  EXPECT_EQ(idle.attached, 0);

  std::vector<std::future<es::Response>> futures;
  for (int i = 0; i < 32; ++i) {
    auto submitted =
        cluster->submit(make_request("tenant-" + std::to_string(i % 4),
                                     static_cast<double>(i)));
    ASSERT_TRUE(submitted.has_value());
    futures.push_back(std::move(*submitted));
  }
  // Backlog of 32 >= watermark 8: one VF plugs per pass up to max_vfs.
  EXPECT_EQ(cluster->autoscale().attached, 1);
  EXPECT_EQ(cluster->autoscale().attached, 1);
  EXPECT_EQ(cluster->autoscale().attached, 0) << "max_vfs reached";
  EXPECT_EQ(cluster->stats().nodes.at(0).vfs, 3);

  cluster->start();
  cluster->drain();
  for (auto &future : futures) EXPECT_TRUE(future.get().status.is_ok());

  // Queue drained: scale back down to the floor, one VF per pass.
  EXPECT_EQ(cluster->autoscale().detached, 1);
  EXPECT_EQ(cluster->autoscale().detached, 1);
  EXPECT_EQ(cluster->autoscale().detached, 0) << "min_vfs is the floor";
  auto stats = cluster->stats();
  EXPECT_EQ(stats.nodes.at(0).vfs, 1);
  EXPECT_EQ(stats.scale_ups, 2);
  EXPECT_EQ(stats.scale_downs, 2);

  // Serving still works on the shrunk replica ring.
  auto after = cluster->submit(make_request("tenant-0", 7.0));
  ASSERT_TRUE(after.has_value());
  cluster->drain();
  EXPECT_TRUE(after->get().status.is_ok());
  cluster->stop();
}

TEST(Cluster, ConcurrentSubmittersAcrossNodesAllComplete) {
  es::ClusterOptions options;
  options.nodes = 4;
  options.replicas = 2;
  options.server.batch.max_batch = 8;
  options.server.batch.max_wait_us = 50.0;
  auto cluster = make_cluster(options);
  ASSERT_NE(cluster, nullptr);
  cluster->start();
  const int kThreads = 4, kPerThread = 32;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<es::Response>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto submitted = cluster->submit(
            make_request("tenant-" + std::to_string((t * kPerThread + i) % 8),
                         static_cast<double>(i)));
        if (submitted.has_value())
          futures[static_cast<std::size_t>(t)].push_back(
              std::move(*submitted));
      }
    });
  }
  for (auto &client : clients) client.join();
  cluster->drain();
  std::size_t completed = 0;
  for (auto &lane : futures) {
    for (auto &future : lane) {
      if (future.get().status.is_ok()) ++completed;
    }
  }
  cluster->stop();
  EXPECT_EQ(completed, static_cast<std::size_t>(kThreads * kPerThread));
  auto stats = cluster->stats();
  EXPECT_EQ(stats.admitted, kThreads * kPerThread);
  EXPECT_EQ(stats.shed, 0);
}

TEST(Cluster, CreateValidatesItsOptions) {
  es::ClusterOptions bad_nodes;
  bad_nodes.nodes = 0;
  EXPECT_FALSE(
      es::Cluster::create(pipe_graph(), pipe_registry(), bad_nodes).has_value());
  es::ClusterOptions bad_vfs;
  bad_vfs.min_vfs = 3;
  bad_vfs.max_vfs = 2;
  EXPECT_FALSE(
      es::Cluster::create(pipe_graph(), pipe_registry(), bad_vfs).has_value());
}
