// The `basecamp` command-line tool (paper §IV: "All tools within the SDK are
// wrapped under the basecamp command, which provides a single point of
// access to the users of the SDK").
//
//   basecamp targets                       list target platforms
//   basecamp dialects                      list registered dialects & ops
//   basecamp compile <file.ekl>... [options]  compile EKL kernels
//     --target=<name>        alveo-u55c | alveo-u280 | cloudfpga
//     --format=<spec>        f64 | f32 | fixed<T,F> | float<E,M> | posit<N,ES>
//     --replicas=<n>         Olympus kernel replication
//     --extent NAME=N        bind an iteration-index extent (repeatable)
//     --emit=<stage>         frontend | teil | loops | system (print IR)
//     --jobs=<n>             compile the input kernels across n threads; the
//                            reports are printed in input order and identical
//                            to a serial (--jobs=1) run
//     --cache-dir=<dir>      content-addressed compile cache: repeat compiles
//                            of unchanged kernels reuse the stored HLS
//                            schedule and Olympus system
//     --run                  deploy on the target device model
//     --fault-seed=<n>       enable deterministic fault injection on the
//                            device run; the same seed reproduces the same
//                            faults (and the same trace) bit-for-bit
//     --fault-plan=<spec>    fault rates, e.g. transfer=0.2,timeout=0.1,
//                            alloc=0.05,timeout-mult=8 (see
//                            platform/fault_injector.hpp for all keys)
//     --retry=<n>            attempt budget for transient device faults
//                            (exponential backoff with deterministic jitter)
//     --deadline-us=<x>      fail (and retry) device runs that exceed x us
//     --trace-out <file>     write a Chrome trace_event JSON of the compile
//                            (and device run) — open in chrome://tracing or
//                            https://ui.perfetto.dev; also prints the span
//                            summary table
//
// EKL inputs are bound to deterministic synthetic tensors sized from the
// declared extents, so any kernel compiles without external data.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dialects/ekl.hpp"
#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "obs/export.hpp"
#include "platform/fault_injector.hpp"
#include "platform/xrt.hpp"
#include "resil/policy.hpp"
#include "sdk/basecamp.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace {

using everest::sdk::Basecamp;
using everest::sdk::CompileOptions;

int cmd_targets(Basecamp &basecamp) {
  for (const char *name : {"alveo-u55c", "alveo-u280", "cloudfpga"}) {
    auto spec = basecamp.device_by_name(name);
    if (!spec) continue;
    std::printf("%-12s %6.1f MHz  %8lld LUT %5lld DSP %5lld BRAM  link %s\n",
                name, spec->clock_mhz,
                static_cast<long long>(spec->capacity.luts),
                static_cast<long long>(spec->capacity.dsps),
                static_cast<long long>(spec->capacity.brams),
                spec->link.kind == everest::platform::LinkSpec::Kind::Pcie
                    ? "PCIe"
                    : "10G network");
  }
  return 0;
}

int cmd_dialects(Basecamp &basecamp) {
  for (const auto &name : basecamp.context().dialect_names()) {
    const auto *dialect = basecamp.context().find_dialect(name);
    std::printf("%s:", name.c_str());
    for (const auto &[op, def] : dialect->ops()) std::printf(" %s", op.c_str());
    std::printf("\n");
  }
  return 0;
}

/// Derives input bindings from the parsed kernel: every iteration index gets
/// an extent (from --extent or a default of 8) and every input a random
/// tensor of the implied shape.
everest::transforms::EklBindings synthesize_bindings(
    const everest::ir::Module &module,
    const std::map<std::string, std::int64_t> &extents) {
  everest::transforms::EklBindings bindings;
  everest::support::Pcg32 rng(42);
  const everest::ir::Operation *kernel = nullptr;
  for (const auto &op : module.body().operations()) {
    if (op->name() == "ekl.kernel") {
      kernel = op.get();
      break;
    }
  }
  if (!kernel) return bindings;

  auto extent_of = [&](const std::string &idx) -> std::int64_t {
    auto it = extents.find(idx);
    return it == extents.end() ? 8 : it->second;
  };

  for (const auto &op : kernel->region(0).front().operations()) {
    if (op->name() == "ekl.input") {
      auto indices = op->attr("indices")->as_string_vector();
      everest::numerics::Shape shape;
      for (const auto &idx : indices) shape.push_back(extent_of(idx));
      everest::numerics::Tensor t(shape);
      for (auto &v : t.data()) v = rng.uniform();
      bindings.inputs.emplace(op->attr_string("name"), std::move(t));
    }
  }
  for (const auto &[name, value] : extents) bindings.extents[name] = value;
  return bindings;
}

int cmd_compile(Basecamp &basecamp, int argc, char **argv) {
  CompileOptions options;
  std::map<std::string, std::int64_t> extents;
  std::vector<std::string> files;
  std::string emit;
  std::string trace_out;
  std::string cache_dir;
  std::string fault_plan_spec;
  std::uint64_t fault_seed = 0;
  bool fault_inject = false;
  everest::resil::ExecutionPolicy policy;
  int jobs = 1;
  bool run = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (everest::support::starts_with(arg, "--target="))
      options.target = arg.substr(9);
    else if (everest::support::starts_with(arg, "--format="))
      options.number_format = arg.substr(9);
    else if (everest::support::starts_with(arg, "--replicas="))
      options.olympus.replicas = std::atoi(arg.c_str() + 11);
    else if (everest::support::starts_with(arg, "--emit="))
      emit = arg.substr(7);
    else if (everest::support::starts_with(arg, "--jobs="))
      jobs = std::atoi(arg.c_str() + 7);
    else if (everest::support::starts_with(arg, "--cache-dir="))
      cache_dir = arg.substr(12);
    else if (arg == "--run")
      run = true;
    else if (everest::support::starts_with(arg, "--fault-seed=")) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
      fault_inject = true;
    } else if (everest::support::starts_with(arg, "--fault-plan=")) {
      fault_plan_spec = arg.substr(13);
      fault_inject = true;
    } else if (everest::support::starts_with(arg, "--retry="))
      policy.retry.max_attempts = std::atoi(arg.c_str() + 8);
    else if (everest::support::starts_with(arg, "--deadline-us="))
      policy.deadline.deadline_us = std::strtod(arg.c_str() + 14, nullptr);
    else if (everest::support::starts_with(arg, "--trace-out="))
      trace_out = arg.substr(12);
    else if (arg == "--trace-out" && i + 1 < argc)
      trace_out = argv[++i];
    else if (arg == "--extent" && i + 1 < argc) {
      auto kv = everest::support::split(argv[++i], '=');
      if (kv.size() == 2)
        extents[kv[0]] = std::strtoll(kv[1].c_str(), nullptr, 10);
    } else if (!everest::support::starts_with(arg, "--")) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "basecamp: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "basecamp compile: missing input file\n");
    return 2;
  }

  everest::sdk::CompileCache cache(cache_dir);
  if (!cache_dir.empty()) basecamp.attach_cache(&cache);

  std::vector<everest::sdk::CompileJob> batch;
  for (const auto &path : files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "basecamp: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::stringstream source;
    source << file.rdbuf();

    // Parse once to learn the inputs, then compile with synthetic bindings.
    auto probe = everest::frontend::parse_ekl(source.str());
    if (!probe) {
      std::fprintf(stderr, "basecamp: %s: [%s] %s\n", path.c_str(),
                   probe.error().code_name(), probe.error().message.c_str());
      return 1;
    }
    everest::sdk::CompileJob job;
    job.name = path;
    job.source = source.str();
    job.bindings = synthesize_bindings(**probe, extents);
    job.options = options;
    batch.push_back(std::move(job));
  }

  auto results = basecamp.compile_many(batch, jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i]) continue;
    std::fprintf(stderr, "basecamp: [%s] %s\n", results[i].error().code_name(),
                 results[i].error().message.c_str());
    return 1;
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto &result = *results[i];
    if (results.size() > 1) std::printf("== %s ==\n", batch[i].name.c_str());

    if (emit == "frontend") std::printf("%s", result.frontend_ir->str().c_str());
    else if (emit == "teil") std::printf("%s", result.teil_ir->str().c_str());
    else if (emit == "loops") std::printf("%s", result.loop_ir->str().c_str());
    else if (emit == "system") std::printf("%s", result.system_ir->str().c_str());

    std::printf("%s", everest::hls::render_report(result.kernel).c_str());
    std::printf("olympus: total %.1f us (compute %.1f, memory %.1f), "
                "utilization %.1f%%, %s\n",
                result.estimate.total_us, result.estimate.compute_us,
                result.estimate.memory_us, result.estimate.utilization * 100.0,
                result.estimate.fits ? "fits" : "DOES NOT FIT");

    if (run) {
      everest::platform::Device device(result.device);
      // Device DMA/kernel spans land in the same trace as the compile stages.
      device.attach_recorder(&basecamp.recorder());
      std::unique_ptr<everest::platform::FaultInjector> injector;
      if (fault_inject) {
        auto plan = fault_plan_spec.empty()
                        ? everest::platform::parse_fault_plan(
                              "transfer=0.2,timeout=0.2,alloc=0.1")
                        : everest::platform::parse_fault_plan(fault_plan_spec);
        if (!plan) {
          std::fprintf(stderr, "basecamp: [%s] %s\n", plan.error().code_name(),
                       plan.error().message.c_str());
          return 2;
        }
        injector = std::make_unique<everest::platform::FaultInjector>(
            fault_seed, *plan);
        injector->attach_recorder(&basecamp.recorder());
        device.attach_fault_injector(injector.get());
      }
      auto us = basecamp.deploy_and_run(device, result, policy);
      if (!us) {
        std::fprintf(stderr, "basecamp: [%s] %s\n", us.error().code_name(),
                     us.error().message.c_str());
        return 1;
      }
      std::printf("device run on %s: %.1f us end-to-end\n",
                  result.device.name.c_str(), *us);
      if (injector && injector->injected_total() > 0) {
        std::printf("injected faults (seed %llu):",
                    static_cast<unsigned long long>(fault_seed));
        for (const auto &[kind, count] : injector->injected_counts())
          std::printf(" %s=%lld", kind.c_str(),
                      static_cast<long long>(count));
        std::printf("  -- recovered via retry/backoff\n");
      }
    }
  }

  if (!cache_dir.empty())
    std::printf("cache: %lld hits, %lld misses (%s)\n",
                static_cast<long long>(cache.hits()),
                static_cast<long long>(cache.misses()), cache_dir.c_str());

  if (!trace_out.empty()) {
    if (auto s = everest::obs::write_chrome_trace(basecamp.recorder(),
                                                  trace_out);
        !s.is_ok()) {
      std::fprintf(stderr, "basecamp: [%s] %s\n", s.error().code_name(),
                   s.error().message.c_str());
      return 1;
    }
    std::printf("\n%s\n", everest::obs::summary_table(basecamp.recorder())
                              .c_str());
    std::printf("trace: wrote %zu events to %s (open in chrome://tracing)\n",
                basecamp.recorder().event_count(), trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: basecamp <targets|dialects|compile> [args...]\n");
    return 2;
  }
  Basecamp basecamp;
  std::string cmd = argv[1];
  if (cmd == "targets") return cmd_targets(basecamp);
  if (cmd == "dialects") return cmd_dialects(basecamp);
  if (cmd == "compile") return cmd_compile(basecamp, argc - 2, argv + 2);
  std::fprintf(stderr, "basecamp: unknown command '%s'\n", cmd.c_str());
  return 2;
}
