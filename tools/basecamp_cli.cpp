// The `basecamp` command-line tool (paper §IV: "All tools within the SDK are
// wrapped under the basecamp command, which provides a single point of
// access to the users of the SDK").
//
//   basecamp targets                       list target platforms
//   basecamp dialects                      list registered dialects & ops
//   basecamp serve [options]               multi-tenant request serving demo
//     --requests <file>      request lines: "<tenant> <v1> [v2 ...]"
//                            ('#' starts a comment); default is a synthetic
//                            workload of --tenants x --requests-per-tenant
//     --tenants=<n>          synthetic workload tenant count (default 2)
//     --requests-per-tenant=<k>  synthetic requests per tenant (default 32)
//     --max-batch=<b>        dynamic batcher upper bound (default 8)
//     --max-wait-us=<x>      batch hold time for the oldest request
//     --dispatchers=<n>      batch-forming/executing threads (default 2)
//     --rate=<r> --burst=<b> per-tenant token-bucket admission limit
//     --queue-bound=<q>      per-tenant queue bound (shed with Unavailable)
//     --device               front the host path with a simulated Alveo
//                            backend (one kernel launch per batch; faults
//                            fail over to the host-CPU backend)
//     --fault-seed/--fault-plan  deterministic device fault injection
//     --trace-out <file>     Chrome trace with serve.* metrics and batch
//                            spans; also prints the summary table
//   basecamp compile <file.ekl>... [options]  compile EKL kernels
//     --target=<name>        alveo-u55c | alveo-u280 | cloudfpga
//     --format=<spec>        f64 | f32 | fixed<T,F> | float<E,M> | posit<N,ES>
//     --replicas=<n>         Olympus kernel replication
//     --extent NAME=N        bind an iteration-index extent (repeatable)
//     --emit=<stage>         frontend | teil | loops | system (print IR)
//     --jobs=<n>             compile the input kernels across n threads; the
//                            reports are printed in input order and identical
//                            to a serial (--jobs=1) run
//     --cache-dir=<dir>      content-addressed compile cache: repeat compiles
//                            of unchanged kernels reuse the stored HLS
//                            schedule and Olympus system
//     --run                  deploy on the target device model
//     --fault-seed=<n>       enable deterministic fault injection on the
//                            device run; the same seed reproduces the same
//                            faults (and the same trace) bit-for-bit
//     --fault-plan=<spec>    fault rates, e.g. transfer=0.2,timeout=0.1,
//                            alloc=0.05,timeout-mult=8 (see
//                            platform/fault_injector.hpp for all keys)
//     --retry=<n>            attempt budget for transient device faults
//                            (exponential backoff with deterministic jitter)
//     --deadline-us=<x>      fail (and retry) device runs that exceed x us
//     --trace-out <file>     write a Chrome trace_event JSON of the compile
//                            (and device run) — open in chrome://tracing or
//                            https://ui.perfetto.dev; also prints the span
//                            summary table
//
// EKL inputs are bound to deterministic synthetic tensors sized from the
// declared extents, so any kernel compiles without external data.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <future>

#include "dialects/ekl.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "obs/export.hpp"
#include "platform/fault_injector.hpp"
#include "platform/xrt.hpp"
#include "resil/policy.hpp"
#include "runtime/dfg_executor.hpp"
#include "sdk/basecamp.hpp"
#include "serve/server.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace {

using everest::sdk::Basecamp;
using everest::sdk::CompileOptions;

int cmd_targets(Basecamp &basecamp) {
  for (const char *name : {"alveo-u55c", "alveo-u280", "cloudfpga"}) {
    auto spec = basecamp.device_by_name(name);
    if (!spec) continue;
    std::printf("%-12s %6.1f MHz  %8lld LUT %5lld DSP %5lld BRAM  link %s\n",
                name, spec->clock_mhz,
                static_cast<long long>(spec->capacity.luts),
                static_cast<long long>(spec->capacity.dsps),
                static_cast<long long>(spec->capacity.brams),
                spec->link.kind == everest::platform::LinkSpec::Kind::Pcie
                    ? "PCIe"
                    : "10G network");
  }
  return 0;
}

int cmd_dialects(Basecamp &basecamp) {
  for (const auto &name : basecamp.context().dialect_names()) {
    const auto *dialect = basecamp.context().find_dialect(name);
    std::printf("%s:", name.c_str());
    for (const auto &[op, def] : dialect->ops()) std::printf(" %s", op.c_str());
    std::printf("\n");
  }
  return 0;
}

/// Derives input bindings from the parsed kernel: every iteration index gets
/// an extent (from --extent or a default of 8) and every input a random
/// tensor of the implied shape.
everest::transforms::EklBindings synthesize_bindings(
    const everest::ir::Module &module,
    const std::map<std::string, std::int64_t> &extents) {
  everest::transforms::EklBindings bindings;
  everest::support::Pcg32 rng(42);
  const everest::ir::Operation *kernel = nullptr;
  for (const everest::ir::Operation &op : module.body().operations()) {
    if (op.name() == "ekl.kernel") {
      kernel = &op;
      break;
    }
  }
  if (!kernel) return bindings;

  auto extent_of = [&](const std::string &idx) -> std::int64_t {
    auto it = extents.find(idx);
    return it == extents.end() ? 8 : it->second;
  };

  for (const everest::ir::Operation &op : kernel->region(0).front().operations()) {
    if (op.name() == "ekl.input") {
      auto indices = op.attr("indices")->as_string_vector();
      everest::numerics::Shape shape;
      for (const auto &idx : indices) shape.push_back(extent_of(idx));
      everest::numerics::Tensor t(shape);
      for (auto &v : t.data()) v = rng.uniform();
      bindings.inputs.emplace(op.attr_string("name"), std::move(t));
    }
  }
  for (const auto &[name, value] : extents) bindings.extents[name] = value;
  return bindings;
}

// ---------------------------------------------------------------- serve

/// The built-in serving graph: a two-stage stateless pipeline, so batches
/// are provably byte-identical to unbatched runs (checked below).
constexpr const char *kServeGraph = R"(
fn serve_pipe(xs: Stream<f64>) -> Stream<f64> {
    let scaled = mul2(xs);
    let biased = add1(scaled);
    return biased;
}
)";

std::shared_ptr<everest::runtime::NodeRegistry> serve_registry() {
  auto registry = std::make_shared<everest::runtime::NodeRegistry>();
  registry->register_node(
      "mul2", [](const std::vector<const everest::runtime::Record *> &in) {
        everest::runtime::Record out = *in.at(0);
        for (double &v : out) v *= 2.0;
        return out;
      });
  registry->register_node(
      "add1", [](const std::vector<const everest::runtime::Record *> &in) {
        everest::runtime::Record out = *in.at(0);
        for (double &v : out) v += 1.0;
        return out;
      });
  return registry;
}

int cmd_serve(Basecamp &basecamp, int argc, char **argv) {
  namespace es = everest::serve;
  std::string requests_file;
  std::string trace_out;
  std::string fault_plan_spec;
  std::uint64_t fault_seed = 0;
  bool fault_inject = false;
  bool use_device = false;
  int tenants = 2;
  int per_tenant = 32;
  es::ServerOptions options;
  options.batch.max_batch = 8;
  options.batch.max_wait_us = 200.0;
  options.dispatchers = 2;
  double rate = 0.0, burst = 8.0;
  std::size_t queue_bound = 0;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc)
      requests_file = argv[++i];
    else if (everest::support::starts_with(arg, "--requests="))
      requests_file = arg.substr(11);
    else if (everest::support::starts_with(arg, "--tenants="))
      tenants = std::atoi(arg.c_str() + 10);
    else if (everest::support::starts_with(arg, "--requests-per-tenant="))
      per_tenant = std::atoi(arg.c_str() + 22);
    else if (everest::support::starts_with(arg, "--max-batch="))
      options.batch.max_batch =
          static_cast<std::size_t>(std::atoi(arg.c_str() + 12));
    else if (everest::support::starts_with(arg, "--max-wait-us="))
      options.batch.max_wait_us = std::strtod(arg.c_str() + 14, nullptr);
    else if (everest::support::starts_with(arg, "--dispatchers="))
      options.dispatchers = std::atoi(arg.c_str() + 14);
    else if (everest::support::starts_with(arg, "--rate="))
      rate = std::strtod(arg.c_str() + 7, nullptr);
    else if (everest::support::starts_with(arg, "--burst="))
      burst = std::strtod(arg.c_str() + 8, nullptr);
    else if (everest::support::starts_with(arg, "--queue-bound="))
      queue_bound = static_cast<std::size_t>(std::atoi(arg.c_str() + 14));
    else if (arg == "--device")
      use_device = true;
    else if (everest::support::starts_with(arg, "--fault-seed=")) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
      fault_inject = true;
      use_device = true;
    } else if (everest::support::starts_with(arg, "--fault-plan=")) {
      fault_plan_spec = arg.substr(13);
      fault_inject = true;
      use_device = true;
    } else if (everest::support::starts_with(arg, "--trace-out="))
      trace_out = arg.substr(12);
    else if (arg == "--trace-out" && i + 1 < argc)
      trace_out = argv[++i];
    else {
      std::fprintf(stderr, "basecamp serve: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  // Workload: either from the request file or a synthetic multi-tenant mix.
  std::vector<es::Request> workload;
  if (!requests_file.empty()) {
    std::ifstream file(requests_file);
    if (!file) {
      std::fprintf(stderr, "basecamp serve: cannot open '%s'\n",
                   requests_file.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(file, line)) {
      auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream in(line);
      es::Request req;
      if (!(in >> req.tenant)) continue;
      everest::runtime::Record record;
      double v;
      while (in >> v) record.push_back(v);
      if (record.empty()) {
        std::fprintf(stderr, "basecamp serve: request line without values: %s\n",
                     line.c_str());
        return 2;
      }
      req.inputs["xs"] = std::move(record);
      workload.push_back(std::move(req));
    }
  } else {
    for (int t = 0; t < tenants; ++t) {
      for (int k = 0; k < per_tenant; ++k) {
        es::Request req;
        req.tenant = "tenant-" + std::string(1, static_cast<char>('a' + t % 26));
        if (t >= 26) req.tenant += std::to_string(t);
        req.inputs["xs"] = {static_cast<double>(t), static_cast<double>(k),
                            static_cast<double>(t * 100 + k)};
        workload.push_back(std::move(req));
      }
    }
  }
  if (workload.empty()) {
    std::fprintf(stderr, "basecamp serve: empty workload\n");
    return 2;
  }
  for (const auto &req : workload) {
    es::TenantConfig config;
    config.rate_per_s = rate;
    config.burst = burst;
    config.queue_bound = queue_bound;
    options.tenants.emplace(req.tenant, config);
  }

  auto graph = everest::frontend::parse_condrust(kServeGraph);
  if (!graph) {
    std::fprintf(stderr, "basecamp serve: [%s] %s\n", graph.error().code_name(),
                 graph.error().message.c_str());
    return 1;
  }
  auto registry = serve_registry();

  // Optional FPGA front-end backend on a simulated Alveo card.
  std::unique_ptr<everest::platform::Device> device;
  std::unique_ptr<everest::platform::FaultInjector> injector;
  if (use_device) {
    auto spec = basecamp.device_by_name("alveo-u55c");
    if (!spec) {
      std::fprintf(stderr, "basecamp serve: %s\n",
                   spec.error().message.c_str());
      return 1;
    }
    device = std::make_unique<everest::platform::Device>(*spec);
    device->attach_recorder(&basecamp.recorder());
    everest::hls::KernelReport kernel;
    kernel.name = "serve_pipe";
    kernel.area = {20'000, 20'000, 16, 16};
    kernel.total_cycles = 3'000;
    kernel.dataflow_cycles = 2'000;
    if (auto s = device->load_kernel("serve_pipe", kernel); !s.is_ok()) {
      std::fprintf(stderr, "basecamp serve: %s\n", s.error().message.c_str());
      return 1;
    }
    if (fault_inject) {
      auto plan = fault_plan_spec.empty()
                      ? everest::platform::parse_fault_plan(
                            "timeout=0.3,timeout-mult=8")
                      : everest::platform::parse_fault_plan(fault_plan_spec);
      if (!plan) {
        std::fprintf(stderr, "basecamp serve: [%s] %s\n",
                     plan.error().code_name(), plan.error().message.c_str());
        return 2;
      }
      injector = std::make_unique<everest::platform::FaultInjector>(fault_seed,
                                                                    *plan);
      injector->attach_recorder(&basecamp.recorder());
      device->attach_fault_injector(injector.get());
    }
  }

  auto server = basecamp.make_server(*graph, registry, options, device.get(),
                                     "serve_pipe");
  if (!server) {
    std::fprintf(stderr, "basecamp serve: [%s] %s\n",
                 server.error().code_name(), server.error().message.c_str());
    return 1;
  }
  (*server)->start();

  std::vector<std::pair<std::size_t, std::future<es::Response>>> futures;
  std::size_t admission_shed = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    auto submitted = (*server)->submit(workload[i]);
    if (!submitted) {
      ++admission_shed;
      continue;
    }
    futures.emplace_back(i, std::move(*submitted));
  }
  (*server)->drain();

  // Byte-identity check: every served output must equal a fresh unbatched
  // single-request execution (stateless stages guarantee it; this is the
  // acceptance gate that batching never changes results).
  std::size_t completed = 0, failed = 0, mismatches = 0;
  for (auto &[index, future] : futures) {
    es::Response response = future.get();
    if (!response.status.is_ok()) {
      ++failed;
      continue;
    }
    ++completed;
    std::map<std::string, everest::runtime::Stream> single;
    single["xs"] = {workload[index].inputs.at("xs")};
    auto direct = everest::runtime::execute_dfg(**graph, *registry, single, 1);
    if (!direct) {
      ++mismatches;
      continue;
    }
    for (const auto &[name, stream] : *direct) {
      auto it = response.outputs.find(name);
      if (it == response.outputs.end() || stream.size() != 1 ||
          it->second != stream[0]) {
        ++mismatches;
      }
    }
  }
  (*server)->stop();

  auto stats = (*server)->stats();
  std::printf("serve: %zu requests, %lld batches (mean batch %.2f, max %g), "
              "%zu completed, %zu failed, %zu shed at admission\n",
              workload.size(), static_cast<long long>(stats.batches),
              stats.batch_size.mean(), stats.batch_size.max(), completed,
              failed, admission_shed + static_cast<std::size_t>(
                                           stats.shed_deadline));
  if (stats.failovers > 0 || stats.breaker_rejections > 0) {
    std::printf("serve: %lld batches failed over, %lld breaker rejections\n",
                static_cast<long long>(stats.failovers),
                static_cast<long long>(stats.breaker_rejections));
  }
  for (const auto &[tenant, t] : stats.tenants) {
    std::printf("  %-12s admitted %-5lld completed %-5lld shed %-5lld "
                "latency mean %.1f us\n",
                tenant.c_str(), static_cast<long long>(t.admitted),
                static_cast<long long>(t.completed),
                static_cast<long long>(t.shed), t.latency_us.mean());
  }
  for (const auto &[name, summary] : basecamp.recorder().histograms()) {
    if (!everest::support::starts_with(name, "serve.latency_us.")) continue;
    std::printf("  %-28s p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
                name.c_str(), summary.p50, summary.p95, summary.p99);
  }
  if (injector && injector->injected_total() > 0) {
    std::printf("injected faults (seed %llu):",
                static_cast<unsigned long long>(fault_seed));
    for (const auto &[kind, count] : injector->injected_counts())
      std::printf(" %s=%lld", kind.c_str(), static_cast<long long>(count));
    std::printf("  -- recovered via retry/failover\n");
  }

  if (!trace_out.empty()) {
    if (auto s =
            everest::obs::write_chrome_trace(basecamp.recorder(), trace_out);
        !s.is_ok()) {
      std::fprintf(stderr, "basecamp serve: [%s] %s\n", s.error().code_name(),
                   s.error().message.c_str());
      return 1;
    }
    std::printf("\n%s\n",
                everest::obs::summary_table(basecamp.recorder()).c_str());
    std::printf("trace: wrote %zu events to %s (open in chrome://tracing)\n",
                basecamp.recorder().event_count(), trace_out.c_str());
  }

  if (mismatches > 0) {
    std::fprintf(stderr,
                 "basecamp serve: %zu responses differ from unbatched "
                 "execution — batching identity violated\n",
                 mismatches);
    return 1;
  }
  if (completed == 0) {
    std::fprintf(stderr, "basecamp serve: no request completed\n");
    return 1;
  }
  return 0;
}

int cmd_compile(Basecamp &basecamp, int argc, char **argv) {
  CompileOptions options;
  std::map<std::string, std::int64_t> extents;
  std::vector<std::string> files;
  std::string emit;
  std::string trace_out;
  std::string cache_dir;
  std::string fault_plan_spec;
  std::uint64_t fault_seed = 0;
  bool fault_inject = false;
  everest::resil::ExecutionPolicy policy;
  int jobs = 1;
  bool run = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (everest::support::starts_with(arg, "--target="))
      options.target = arg.substr(9);
    else if (everest::support::starts_with(arg, "--format="))
      options.number_format = arg.substr(9);
    else if (everest::support::starts_with(arg, "--replicas="))
      options.olympus.replicas = std::atoi(arg.c_str() + 11);
    else if (everest::support::starts_with(arg, "--emit="))
      emit = arg.substr(7);
    else if (everest::support::starts_with(arg, "--jobs="))
      jobs = std::atoi(arg.c_str() + 7);
    else if (everest::support::starts_with(arg, "--cache-dir="))
      cache_dir = arg.substr(12);
    else if (arg == "--run")
      run = true;
    else if (everest::support::starts_with(arg, "--fault-seed=")) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
      fault_inject = true;
    } else if (everest::support::starts_with(arg, "--fault-plan=")) {
      fault_plan_spec = arg.substr(13);
      fault_inject = true;
    } else if (everest::support::starts_with(arg, "--retry="))
      policy.retry.max_attempts = std::atoi(arg.c_str() + 8);
    else if (everest::support::starts_with(arg, "--deadline-us="))
      policy.deadline.deadline_us = std::strtod(arg.c_str() + 14, nullptr);
    else if (everest::support::starts_with(arg, "--trace-out="))
      trace_out = arg.substr(12);
    else if (arg == "--trace-out" && i + 1 < argc)
      trace_out = argv[++i];
    else if (arg == "--extent" && i + 1 < argc) {
      auto kv = everest::support::split(argv[++i], '=');
      if (kv.size() == 2)
        extents[kv[0]] = std::strtoll(kv[1].c_str(), nullptr, 10);
    } else if (!everest::support::starts_with(arg, "--")) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "basecamp: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "basecamp compile: missing input file\n");
    return 2;
  }

  everest::sdk::CompileCache cache(cache_dir);
  if (!cache_dir.empty()) basecamp.attach_cache(&cache);

  std::vector<everest::sdk::CompileJob> batch;
  for (const auto &path : files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "basecamp: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::stringstream source;
    source << file.rdbuf();

    // Parse once to learn the inputs, then compile with synthetic bindings.
    auto probe = everest::frontend::parse_ekl(source.str());
    if (!probe) {
      std::fprintf(stderr, "basecamp: %s: [%s] %s\n", path.c_str(),
                   probe.error().code_name(), probe.error().message.c_str());
      return 1;
    }
    everest::sdk::CompileJob job;
    job.name = path;
    job.source = source.str();
    job.bindings = synthesize_bindings(**probe, extents);
    job.options = options;
    batch.push_back(std::move(job));
  }

  auto results = basecamp.compile_many(batch, jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i]) continue;
    std::fprintf(stderr, "basecamp: [%s] %s\n", results[i].error().code_name(),
                 results[i].error().message.c_str());
    return 1;
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto &result = *results[i];
    if (results.size() > 1) std::printf("== %s ==\n", batch[i].name.c_str());

    if (emit == "frontend") std::printf("%s", result.frontend_ir->str().c_str());
    else if (emit == "teil") std::printf("%s", result.teil_ir->str().c_str());
    else if (emit == "loops") std::printf("%s", result.loop_ir->str().c_str());
    else if (emit == "system") std::printf("%s", result.system_ir->str().c_str());

    std::printf("%s", everest::hls::render_report(result.kernel).c_str());
    std::printf("olympus: total %.1f us (compute %.1f, memory %.1f), "
                "utilization %.1f%%, %s\n",
                result.estimate.total_us, result.estimate.compute_us,
                result.estimate.memory_us, result.estimate.utilization * 100.0,
                result.estimate.fits ? "fits" : "DOES NOT FIT");

    if (run) {
      everest::platform::Device device(result.device);
      // Device DMA/kernel spans land in the same trace as the compile stages.
      device.attach_recorder(&basecamp.recorder());
      std::unique_ptr<everest::platform::FaultInjector> injector;
      if (fault_inject) {
        auto plan = fault_plan_spec.empty()
                        ? everest::platform::parse_fault_plan(
                              "transfer=0.2,timeout=0.2,alloc=0.1")
                        : everest::platform::parse_fault_plan(fault_plan_spec);
        if (!plan) {
          std::fprintf(stderr, "basecamp: [%s] %s\n", plan.error().code_name(),
                       plan.error().message.c_str());
          return 2;
        }
        injector = std::make_unique<everest::platform::FaultInjector>(
            fault_seed, *plan);
        injector->attach_recorder(&basecamp.recorder());
        device.attach_fault_injector(injector.get());
      }
      auto us = basecamp.deploy_and_run(device, result, policy);
      if (!us) {
        std::fprintf(stderr, "basecamp: [%s] %s\n", us.error().code_name(),
                     us.error().message.c_str());
        return 1;
      }
      std::printf("device run on %s: %.1f us end-to-end\n",
                  result.device.name.c_str(), *us);
      if (injector && injector->injected_total() > 0) {
        std::printf("injected faults (seed %llu):",
                    static_cast<unsigned long long>(fault_seed));
        for (const auto &[kind, count] : injector->injected_counts())
          std::printf(" %s=%lld", kind.c_str(),
                      static_cast<long long>(count));
        std::printf("  -- recovered via retry/backoff\n");
      }
    }
  }

  if (!cache_dir.empty())
    std::printf("cache: %lld hits, %lld misses (%s)\n",
                static_cast<long long>(cache.hits()),
                static_cast<long long>(cache.misses()), cache_dir.c_str());

  if (!trace_out.empty()) {
    if (auto s = everest::obs::write_chrome_trace(basecamp.recorder(),
                                                  trace_out);
        !s.is_ok()) {
      std::fprintf(stderr, "basecamp: [%s] %s\n", s.error().code_name(),
                   s.error().message.c_str());
      return 1;
    }
    std::printf("\n%s\n", everest::obs::summary_table(basecamp.recorder())
                              .c_str());
    std::printf("trace: wrote %zu events to %s (open in chrome://tracing)\n",
                basecamp.recorder().event_count(), trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: basecamp <targets|dialects|compile|serve> [args...]\n");
    return 2;
  }
  Basecamp basecamp;
  std::string cmd = argv[1];
  if (cmd == "targets") return cmd_targets(basecamp);
  if (cmd == "dialects") return cmd_dialects(basecamp);
  if (cmd == "compile") return cmd_compile(basecamp, argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(basecamp, argc - 2, argv + 2);
  std::fprintf(stderr, "basecamp: unknown command '%s'\n", cmd.c_str());
  return 2;
}
