// The `basecamp` command-line tool (paper §IV: "All tools within the SDK are
// wrapped under the basecamp command, which provides a single point of
// access to the users of the SDK").
//
//   basecamp targets                       list target platforms
//   basecamp dialects                      list registered dialects & ops
//   basecamp compile <file.ekl> [options]  compile an EKL kernel
//     --target=<name>        alveo-u55c | alveo-u280 | cloudfpga
//     --format=<spec>        f64 | f32 | fixed<T,F> | float<E,M> | posit<N,ES>
//     --replicas=<n>         Olympus kernel replication
//     --extent NAME=N        bind an iteration-index extent (repeatable)
//     --emit=<stage>         frontend | teil | loops | system (print IR)
//     --run                  deploy on the target device model
//     --trace-out <file>     write a Chrome trace_event JSON of the compile
//                            (and device run) — open in chrome://tracing or
//                            https://ui.perfetto.dev; also prints the span
//                            summary table
//
// EKL inputs are bound to deterministic synthetic tensors sized from the
// declared extents, so any kernel compiles without external data.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "dialects/ekl.hpp"
#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "obs/export.hpp"
#include "platform/xrt.hpp"
#include "sdk/basecamp.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace {

using everest::sdk::Basecamp;
using everest::sdk::CompileOptions;

int cmd_targets(Basecamp &basecamp) {
  for (const char *name : {"alveo-u55c", "alveo-u280", "cloudfpga"}) {
    auto spec = basecamp.device_by_name(name);
    if (!spec) continue;
    std::printf("%-12s %6.1f MHz  %8lld LUT %5lld DSP %5lld BRAM  link %s\n",
                name, spec->clock_mhz,
                static_cast<long long>(spec->capacity.luts),
                static_cast<long long>(spec->capacity.dsps),
                static_cast<long long>(spec->capacity.brams),
                spec->link.kind == everest::platform::LinkSpec::Kind::Pcie
                    ? "PCIe"
                    : "10G network");
  }
  return 0;
}

int cmd_dialects(Basecamp &basecamp) {
  for (const auto &name : basecamp.context().dialect_names()) {
    const auto *dialect = basecamp.context().find_dialect(name);
    std::printf("%s:", name.c_str());
    for (const auto &[op, def] : dialect->ops()) std::printf(" %s", op.c_str());
    std::printf("\n");
  }
  return 0;
}

/// Derives input bindings from the parsed kernel: every iteration index gets
/// an extent (from --extent or a default of 8) and every input a random
/// tensor of the implied shape.
everest::transforms::EklBindings synthesize_bindings(
    const everest::ir::Module &module,
    const std::map<std::string, std::int64_t> &extents) {
  everest::transforms::EklBindings bindings;
  everest::support::Pcg32 rng(42);
  const everest::ir::Operation *kernel = nullptr;
  for (const auto &op : module.body().operations()) {
    if (op->name() == "ekl.kernel") {
      kernel = op.get();
      break;
    }
  }
  if (!kernel) return bindings;

  auto extent_of = [&](const std::string &idx) -> std::int64_t {
    auto it = extents.find(idx);
    return it == extents.end() ? 8 : it->second;
  };

  for (const auto &op : kernel->region(0).front().operations()) {
    if (op->name() == "ekl.input") {
      auto indices = op->attr("indices")->as_string_vector();
      everest::numerics::Shape shape;
      for (const auto &idx : indices) shape.push_back(extent_of(idx));
      everest::numerics::Tensor t(shape);
      for (auto &v : t.data()) v = rng.uniform();
      bindings.inputs.emplace(op->attr_string("name"), std::move(t));
    }
  }
  for (const auto &[name, value] : extents) bindings.extents[name] = value;
  return bindings;
}

int cmd_compile(Basecamp &basecamp, int argc, char **argv) {
  if (argc < 1) {
    std::fprintf(stderr, "basecamp compile: missing input file\n");
    return 2;
  }
  std::ifstream file(argv[0]);
  if (!file) {
    std::fprintf(stderr, "basecamp: cannot open '%s'\n", argv[0]);
    return 2;
  }
  std::stringstream source;
  source << file.rdbuf();

  CompileOptions options;
  std::map<std::string, std::int64_t> extents;
  std::string emit;
  std::string trace_out;
  bool run = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (everest::support::starts_with(arg, "--target="))
      options.target = arg.substr(9);
    else if (everest::support::starts_with(arg, "--format="))
      options.number_format = arg.substr(9);
    else if (everest::support::starts_with(arg, "--replicas="))
      options.olympus.replicas = std::atoi(arg.c_str() + 11);
    else if (everest::support::starts_with(arg, "--emit="))
      emit = arg.substr(7);
    else if (arg == "--run")
      run = true;
    else if (everest::support::starts_with(arg, "--trace-out="))
      trace_out = arg.substr(12);
    else if (arg == "--trace-out" && i + 1 < argc)
      trace_out = argv[++i];
    else if (arg == "--extent" && i + 1 < argc) {
      auto kv = everest::support::split(argv[++i], '=');
      if (kv.size() == 2)
        extents[kv[0]] = std::strtoll(kv[1].c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "basecamp: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  // Parse once to learn the inputs, then compile with synthetic bindings.
  auto probe = everest::frontend::parse_ekl(source.str());
  if (!probe) {
    std::fprintf(stderr, "basecamp: [%s] %s\n", probe.error().code_name(),
                 probe.error().message.c_str());
    return 1;
  }
  auto bindings = synthesize_bindings(**probe, extents);

  auto result = basecamp.compile_ekl(source.str(), bindings, options);
  if (!result) {
    std::fprintf(stderr, "basecamp: [%s] %s\n", result.error().code_name(),
                 result.error().message.c_str());
    return 1;
  }

  if (emit == "frontend") std::printf("%s", result->frontend_ir->str().c_str());
  else if (emit == "teil") std::printf("%s", result->teil_ir->str().c_str());
  else if (emit == "loops") std::printf("%s", result->loop_ir->str().c_str());
  else if (emit == "system") std::printf("%s", result->system_ir->str().c_str());

  std::printf("%s", everest::hls::render_report(result->kernel).c_str());
  std::printf("olympus: total %.1f us (compute %.1f, memory %.1f), "
              "utilization %.1f%%, %s\n",
              result->estimate.total_us, result->estimate.compute_us,
              result->estimate.memory_us, result->estimate.utilization * 100.0,
              result->estimate.fits ? "fits" : "DOES NOT FIT");

  if (run) {
    everest::platform::Device device(result->device);
    // Device DMA/kernel spans land in the same trace as the compile stages.
    device.attach_recorder(&basecamp.recorder());
    auto us = basecamp.deploy_and_run(device, *result);
    if (!us) {
      std::fprintf(stderr, "basecamp: [%s] %s\n", us.error().code_name(),
                   us.error().message.c_str());
      return 1;
    }
    std::printf("device run on %s: %.1f us end-to-end\n",
                result->device.name.c_str(), *us);
  }

  if (!trace_out.empty()) {
    if (auto s = everest::obs::write_chrome_trace(basecamp.recorder(),
                                                  trace_out);
        !s.is_ok()) {
      std::fprintf(stderr, "basecamp: [%s] %s\n", s.error().code_name(),
                   s.error().message.c_str());
      return 1;
    }
    std::printf("\n%s\n", everest::obs::summary_table(basecamp.recorder())
                              .c_str());
    std::printf("trace: wrote %zu events to %s (open in chrome://tracing)\n",
                basecamp.recorder().event_count(), trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: basecamp <targets|dialects|compile> [args...]\n");
    return 2;
  }
  Basecamp basecamp;
  std::string cmd = argv[1];
  if (cmd == "targets") return cmd_targets(basecamp);
  if (cmd == "dialects") return cmd_dialects(basecamp);
  if (cmd == "compile") return cmd_compile(basecamp, argc - 2, argv + 2);
  std::fprintf(stderr, "basecamp: unknown command '%s'\n", cmd.c_str());
  return 2;
}
