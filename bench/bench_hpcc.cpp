// HPCC-FPGA workload suite (arXiv:2004.11059 adapted to the EVEREST stack):
// STREAM, GEMM, PTRANS, FFT, RandomAccess, LINPACK, b_eff. Each workload
// compiles through the full Basecamp pipeline, validates the compiled
// loop-level IR against a scalar host reference (error < epsilon), and
// reports measured-vs-roofline ratios against the device model's published
// HBM / DMA / network bandwidths. Emits one BENCH_hpcc.json and self-checks
// it with check_suite_json; any validation or sanity-bound violation makes
// the process exit non-zero.

#include <cstdio>
#include <fstream>

#include "hpcc/workloads.hpp"
#include "sdk/options.hpp"
#include "support/table.hpp"

namespace hpcc = everest::hpcc;

int main(int argc, char **argv) {
  auto config = hpcc::parse_hpcc_args(argc, argv);
  if (!config) {
    std::fprintf(stderr, "%s\n", config.error().message.c_str());
    return 2;
  }

  std::printf("== HPCC-FPGA workload suite (n=%lld, target=%s) ==\n\n",
              static_cast<long long>(config->n), config->target.c_str());

  hpcc::HpccHarness harness(*config);
  auto results = hpcc::run_suite(harness);
  if (!results) {
    std::fprintf(stderr, "suite failed: %s\n",
                 results.error().message.c_str());
    return 1;
  }

  everest::support::Table table(
      {"benchmark", "axis", "measured", "unit", "roofline", "ratio", "error",
       "ok"});
  for (const auto &r : *results) {
    char measured[32], roofline[32], ratio[32], error[32];
    std::snprintf(measured, sizeof measured, "%.4g", r.measured);
    std::snprintf(roofline, sizeof roofline, "%.4g", r.roofline);
    std::snprintf(ratio, sizeof ratio, "%.3f", r.ratio);
    std::snprintf(error, sizeof error, "%.2e", r.error);
    table.add_row({r.name, r.axis, measured, r.unit, roofline, ratio, error,
                   r.validated ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  auto device = everest::sdk::resolve_target(config->target);
  if (!device) {
    std::fprintf(stderr, "unknown target: %s\n",
                 device.error().message.c_str());
    return 1;
  }
  auto doc = hpcc::suite_json(*config, *device, *results);
  {
    std::ofstream out(config->out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", config->out.c_str());
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  std::printf("wrote %s\n", config->out.c_str());

  if (auto check = hpcc::check_suite_json(doc); !check.is_ok()) {
    std::fprintf(stderr, "self-check FAILED: %s\n",
                 check.error().message.c_str());
    return 1;
  }
  std::printf("self-check passed: 7/7 workloads validated, ratios in (0, 1]\n");
  return 0;
}
