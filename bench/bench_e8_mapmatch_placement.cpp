// E8 (paper §VIII): "For Map-Matching, we conducted an exploration using the
// EVEREST SDK to generate hardware-accelerated implementations of the
// individual sub-kernels and to transparently decide at compile time where
// to allocate the kernels (FPGA or CPU)". Sweeps the FPGA resource budget
// and reports the chosen placement and predicted latency at each point —
// the latency/resource Pareto of the exploration.

#include <cstdio>

#include "frontend/condrust_parser.hpp"
#include "support/table.hpp"
#include "transforms/dfg_partition.hpp"
#include "usecases/traffic.hpp"

namespace et = everest::transforms;
namespace tr = everest::usecases::traffic;

int main() {
  std::printf("== E8: compile-time CPU/FPGA allocation of map-matching "
              "sub-kernels ==\n\n");

  // Per-sub-kernel cost models: HLS-estimated fpga times and measured CPU
  // times for a 10k-point batch; viterbi_step is an ordered fold (CPU).
  std::map<std::string, et::NodeCost> costs;
  costs["candidates"] = {40.0, 2.5, 420'000, 10e6};
  costs["emission_score"] = {8.0, 0.9, 150'000, 10e6};
  costs["greedy_pick"] = {2.0, 1.5, 80'000, 1e6};
  costs["viterbi_step"] = {15.0, 15.0, 0, 10e6};
  costs["decode"] = {1.0, 2.0, 50'000, 1e3};

  everest::support::Table table({"LUT budget", "candidates", "emission",
                                 "greedy", "latency [ms]", "LUTs used",
                                 "explored"});
  double prev_latency = 1e300;
  bool monotone = true;
  for (std::int64_t budget :
       {0LL, 100'000LL, 200'000LL, 500'000LL, 700'000LL, 1'300'000LL}) {
    // The Fig. 4 program without the #[fpga] pin, so the explorer is free.
    auto module = everest::frontend::parse_condrust(R"(
fn map_match(points: Stream<Point>) -> Stream<Seg> {
    let cands = candidates(points);
    let scored = emission_score(cands, points);
    let best = greedy_pick(scored);
    let state = fold viterbi_step(scored);
    let quality = decode(state);
    return best;
}
)");
    if (!module) return 1;

    et::PlacementBudget pb;
    pb.available_luts = budget;
    auto result = et::partition_dfg(*module.value(), costs, pb);
    if (!result) {
      std::fprintf(stderr, "partition failed: %s\n",
                   result.error().message.c_str());
      return 1;
    }
    char lat[32];
    std::snprintf(lat, sizeof lat, "%.1f", result->predicted_ms);
    table.add_row({std::to_string(budget),
                   result->placement.at("candidates"),
                   result->placement.at("emission_score"),
                   result->placement.at("greedy_pick"), lat,
                   std::to_string(result->luts_used),
                   std::to_string(result->explored)});
    monotone = monotone && result->predicted_ms <= prev_latency + 1e-9;
    prev_latency = result->predicted_ms;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: latency is monotone non-increasing in the budget (%s);\n"
              "candidates (the heavy geometric search) is offloaded first,\n"
              "then emission scoring; the ordered Viterbi fold stays on CPU.\n",
              monotone ? "holds" : "VIOLATED");
  return monotone ? 0 : 1;
}
