// E9 (paper §VIII): "We also implemented the PTDR kernel on a compute
// cluster with Alveo u55c FPGAs ... We also tested this component with the
// virtualization layer." Measures the CPU Monte-Carlo kernel with
// google-benchmark across sample counts, schedules the same kernel with the
// HLS engine onto the u55c model (including host transfers via the XRT-like
// API), and repeats the device run through an SR-IOV VF.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "hls/scheduler.hpp"
#include "olympus/olympus.hpp"
#include "support/table.hpp"
#include "usecases/ptdr.hpp"
#include "virt/virt.hpp"

namespace pt = everest::usecases::ptdr;
namespace tr = everest::usecases::traffic;
namespace ep = everest::platform;

namespace {

struct Fixture {
  tr::RoadNetwork net = tr::make_grid_network(10, 1.0, 3);
  pt::Model model = pt::make_model(net, 4);
  pt::Route route = pt::make_route(net, 20, 7);
};

Fixture &fixture() {
  static Fixture f;
  return f;
}

void BM_PtdrCpu(benchmark::State &state) {
  auto &f = fixture();
  auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto dist = pt::monte_carlo(f.model, f.route, 40, samples, 9);
    benchmark::DoNotOptimize(dist);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_PtdrCpu)->Arg(1000)->Arg(10000)->Arg(100000);

/// Wall-clock of one CPU run, for the comparison table.
double cpu_ms(std::size_t samples) {
  auto &f = fixture();
  auto start = std::chrono::steady_clock::now();
  auto dist = pt::monte_carlo(f.model, f.route, 40, samples, 9);
  auto stop = std::chrono::steady_clock::now();
  (void)dist;
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char **argv) {
  std::printf("== E9: PTDR on Alveo u55c (simulated) vs CPU ==\n\n");
  auto &f = fixture();

  everest::support::Table table({"samples", "CPU [ms]", "u55c kernel [ms]",
                                 "u55c end-to-end [ms]", "VF (SR-IOV) [ms]",
                                 "speedup e2e"});
  for (std::size_t samples : {1000u, 10000u, 100000u, 1000000u}) {
    double cpu = cpu_ms(samples);

    auto loops = pt::sampling_kernel_ir(samples, f.route.segments.size());
    auto report = everest::hls::schedule_kernel(*loops);
    if (!report) {
      std::fprintf(stderr, "hls failed: %s\n", report.error().message.c_str());
      return 1;
    }
    double kernel_ms = report->latency_us(true) / 1000.0;

    // End to end through the XRT-like runtime, native and through a VF.
    everest::olympus::SystemGenerator gen(ep::alveo_u55c());
    everest::olympus::Options options;
    options.replicas = 4;  // PTDR replicates trivially over samples

    ep::Device native(ep::alveo_u55c());
    auto native_us = gen.execute_on(native, *report, options);

    everest::virt::VirtNode node("phys0", 32, {ep::alveo_u55c()}, 4);
    auto vm = node.create_vm("guest", 8).value();
    auto vf = node.attach_vf(vm, 0).value();
    auto *vf_dev = node.vm_device(vm, vf).value();
    auto vf_us = gen.execute_on(*vf_dev, *report, options);

    if (!native_us || !vf_us) {
      std::fprintf(stderr, "device run failed\n");
      return 1;
    }
    char c[32], k[32], e[32], v[32], s[32];
    std::snprintf(c, sizeof c, "%.2f", cpu);
    std::snprintf(k, sizeof k, "%.2f", kernel_ms);
    std::snprintf(e, sizeof e, "%.2f", *native_us / 1000.0);
    std::snprintf(v, sizeof v, "%.2f", *vf_us / 1000.0);
    std::snprintf(s, sizeof s, "%.1fx", cpu / (*native_us / 1000.0));
    table.add_row({std::to_string(samples), c, k, e, v, s});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: FPGA advantage grows with samples (pipelined II=small\n"
              "inner loop vs serial CPU); the SR-IOV column tracks native\n"
              "within a few percent (virtualization layer claim).\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
