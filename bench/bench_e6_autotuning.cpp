// E6 (paper §VI-C): mARGOt dynamic autotuning. A PTDR-like application has
// three variants (cpu-1-thread, cpu-8-threads, fpga) whose real performance
// shifts as the environment changes (CPU contention appears, then the FPGA
// VF is unplugged). The autotuner's corrected expectations must track the
// environment and re-select the best variant, subject to an error
// constraint.

#include <cstdio>

#include "autotune/autotuner.hpp"
#include "support/table.hpp"

namespace ea = everest::autotune;

namespace {

/// Ground-truth latency per variant in each environment phase.
double true_latency(int variant, int phase) {
  // variant: 0 = cpu x1, 1 = cpu x8, 2 = fpga
  // phase 0: idle node. phase 1: CPU contended. phase 2: FPGA lost (VF
  // unplugged => falls back to PCIe-emulated path, very slow).
  static const double lat[3][3] = {
      {80.0, 20.0, 6.0},    // phase 0
      {240.0, 60.0, 6.5},   // phase 1 (CPU 3x slower)
      {240.0, 60.0, 500.0}, // phase 2 (FPGA path broken)
  };
  return lat[phase][variant];
}

}  // namespace

int main() {
  std::printf("== E6: mARGOt-style dynamic autotuning ==\n\n");

  // Application knowledge from design-time profiling on an idle node. The
  // sampling-count knob trades error for time; the FPGA variant runs more
  // samples in the same budget. The profiling loop fans out across a thread
  // pool; the deterministic merge appends points in candidate order, so the
  // tuner is identical for any worker count (checked against a serial twin).
  std::vector<std::map<std::string, double>> candidates = {
      {{"variant", 0}, {"samples", 1e4}},
      {{"variant", 1}, {"samples", 1e4}},
      {{"variant", 2}, {"samples", 1e5}},
  };
  auto profile = [](const std::map<std::string, double> &knobs)
      -> everest::support::Expected<std::map<std::string, double>> {
    int v = static_cast<int>(knobs.at("variant"));
    return std::map<std::string, double>{
        {"time_ms", v == 0 ? 80.0 : v == 1 ? 20.0 : 6.0},
        {"error", v == 2 ? 0.003 : 0.010}};
  };

  ea::Autotuner tuner;
  everest::support::ThreadPool pool(4);
  auto added = tuner.evaluate_candidates(candidates, profile, &pool);
  if (!added || *added != candidates.size()) {
    std::fprintf(stderr, "candidate evaluation failed\n");
    return 1;
  }
  tuner.add_constraint({"error", ea::Constraint::Kind::LessEqual, 0.02, 2});
  tuner.set_rank({"time_ms", false});

  ea::Autotuner serial_twin;
  (void)serial_twin.evaluate_candidates(candidates, profile, nullptr);
  serial_twin.add_constraint({"error", ea::Constraint::Kind::LessEqual, 0.02, 2});
  serial_twin.set_rank({"time_ms", false});
  auto parallel_pick = tuner.select();
  auto serial_pick = serial_twin.select();
  if (!parallel_pick || !serial_pick ||
      parallel_pick->knobs != serial_pick->knobs) {
    std::fprintf(stderr, "parallel DSE diverged from serial DSE\n");
    return 1;
  }
  std::printf("design-time DSE: %zu candidates profiled on %zu workers; "
              "selection matches serial evaluation\n\n",
              candidates.size(), pool.size());

  // Per-variant correction requires one tuner per variant family in this
  // compact implementation; model mARGOt's per-configuration monitors by
  // tracking observed/expected per variant.
  std::map<int, double> correction{{0, 1.0}, {1, 1.0}, {2, 1.0}};

  everest::support::Table table({"step", "phase", "selected variant",
                                 "predicted [ms]", "measured [ms]",
                                 "running best?"});
  const char *phase_names[] = {"idle", "cpu-contended", "fpga-lost"};
  int correct_picks = 0, steps = 0;

  for (int step = 0; step < 18; ++step) {
    int phase = step / 6;

    // Select using corrected expectations.
    int best_variant = 0;
    double best_time = 1e300;
    for (int v = 0; v < 3; ++v) {
      double base = v == 0 ? 80.0 : (v == 1 ? 20.0 : 6.0);
      double expected = base * correction[v];
      if (expected < best_time) {
        best_time = expected;
        best_variant = v;
      }
    }

    double measured = true_latency(best_variant, phase);
    // mARGOt feedback: EMA of observed/expected on the chosen configuration.
    double base = best_variant == 0 ? 80.0 : (best_variant == 1 ? 20.0 : 6.0);
    double ratio = measured / base;
    correction[best_variant] =
        0.6 * correction[best_variant] + 0.4 * ratio;

    // Which variant is truly best this phase?
    int truly_best = 0;
    for (int v = 1; v < 3; ++v) {
      if (true_latency(v, phase) < true_latency(truly_best, phase))
        truly_best = v;
    }
    bool good = best_variant == truly_best;
    correct_picks += good;
    ++steps;

    char p[32], m[32];
    std::snprintf(p, sizeof p, "%.1f", best_time);
    std::snprintf(m, sizeof m, "%.1f", measured);
    static const char *variant_names[] = {"cpu-x1", "cpu-x8", "fpga"};
    table.add_row({std::to_string(step), phase_names[phase],
                   variant_names[best_variant], p, m, good ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("adaptation quality: %d/%d steps on the truly-best variant\n",
              correct_picks, steps);
  std::printf("shape: fpga is chosen while available; after the VF unplug the\n"
              "observed 500 ms inflates its correction and the tuner falls\n"
              "back to cpu-x8 within a couple of observations.\n");

  // Also exercise the library-level Autotuner API end to end.
  auto pick = tuner.select();
  if (!pick || pick->knobs.at("variant") != 2) {
    std::fprintf(stderr, "library select() should pick the fpga variant\n");
    return 1;
  }
  return correct_picks >= steps - 3 ? 0 : 1;
}
