// E5 (paper §VI-A): the resource manager. Three sub-experiments on a
// traffic-pipeline-shaped DAG: (a) makespan vs cluster size with HEFT vs
// FIFO; (b) transfer-aware vs naive placement under big intermediates;
// (c) rescheduling cost after a node failure.

// (d) fault sweep: makespan degradation vs injected node fault rate, with
// fault plans drawn deterministically by resil::sample_node_faults.

#include <cstdio>

#include "obs/export.hpp"
#include "resil/fault.hpp"
#include "runtime/resource_manager.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace er = everest::runtime;
namespace rs = everest::resil;

namespace {

/// Daily traffic-processing DAG: per-district map-match fans out of an
/// ingest task, aggregation joins districts, model update chains at the end.
void build_traffic_dag(er::ResourceManager &rm, int districts,
                       std::uint64_t seed) {
  everest::support::Pcg32 rng(seed);
  er::TaskSpec ingest{"ingest", {}, 30.0};
  ingest.output_bytes = 200'000'000;
  auto ingest_f = rm.submit(ingest).value();

  std::vector<er::TaskId> matches;
  for (int d = 0; d < districts; ++d) {
    er::TaskSpec match{"match" + std::to_string(d), {ingest_f.id},
                       rng.uniform(40.0, 80.0)};
    match.fpga_ms = match.cpu_ms / 8.0;
    match.output_bytes = 20'000'000;
    matches.push_back(rm.submit(match).value().id);
  }
  er::TaskSpec aggregate{"aggregate", matches, 25.0};
  aggregate.output_bytes = 50'000'000;
  auto agg = rm.submit(aggregate).value();
  er::TaskSpec train{"train_model", {agg.id}, 60.0};
  train.fpga_ms = 15.0;
  (void)rm.submit(train).value();
}

er::ClusterSpec cluster_of(int nodes) {
  er::ClusterSpec c;
  for (int i = 0; i < nodes; ++i)
    c.nodes.push_back({"node" + std::to_string(i), 8, i == 0, 1.0});
  return c;
}

}  // namespace

int main() {
  std::printf("== E5: resource manager scheduling ==\n\n");

  // (a) makespan vs nodes, HEFT vs FIFO.
  everest::support::Table scale({"nodes", "HEFT makespan [ms]",
                                 "FIFO makespan [ms]", "HEFT util",
                                 "transfers [MB]"});
  for (int nodes : {2, 4, 8, 16, 32}) {
    er::ResourceManager rm(cluster_of(nodes));
    build_traffic_dag(rm, 48, 7);
    er::SchedulerOptions fifo;
    fifo.policy = er::SchedulerOptions::Policy::Fifo;
    auto heft_r = rm.run().value();
    auto fifo_r = rm.run(fifo).value();
    char h[32], f[32], u[32], t[32];
    std::snprintf(h, sizeof h, "%.0f", heft_r.makespan_ms);
    std::snprintf(f, sizeof f, "%.0f", fifo_r.makespan_ms);
    std::snprintf(u, sizeof u, "%.2f", heft_r.avg_core_utilization);
    std::snprintf(t, sizeof t, "%.0f",
                  static_cast<double>(heft_r.bytes_transferred) / 1e6);
    scale.add_row({std::to_string(nodes), h, f, u, t});
  }
  std::printf("%s\n", scale.render().c_str());

  // (b) transfer-aware vs naive placement.
  everest::support::Table locality({"placement", "makespan [ms]",
                                    "bytes moved [MB]"});
  for (bool aware : {true, false}) {
    er::ClusterSpec slow_net = cluster_of(8);
    slow_net.net_gbps = 1.0;
    er::ResourceManager rm(slow_net);
    build_traffic_dag(rm, 24, 7);
    er::SchedulerOptions opt;
    opt.transfer_aware = aware;
    auto r = rm.run(opt).value();
    char m[32], b[32];
    std::snprintf(m, sizeof m, "%.0f", r.makespan_ms);
    std::snprintf(b, sizeof b, "%.0f",
                  static_cast<double>(r.bytes_transferred) / 1e6);
    locality.add_row({aware ? "transfer-aware" : "naive", m, b});
  }
  std::printf("%s\n", locality.render().c_str());

  // (c) failure rescheduling, with the degraded run traced onto the
  // simulated timeline (one span per task placement, one track per node).
  everest::support::Table failure({"scenario", "makespan [ms]",
                                   "rescheduled tasks"});
  everest::obs::TraceRecorder recorder;
  {
    er::ResourceManager rm(cluster_of(8));
    build_traffic_dag(rm, 48, 7);
    auto healthy = rm.run().value();
    char m[32];
    std::snprintf(m, sizeof m, "%.0f", healthy.makespan_ms);
    failure.add_row({"healthy", m, "0"});
    rm.inject_failure({"node1", healthy.makespan_ms * 0.3,
                       er::FaultKind::Crash});
    auto degraded = rm.run({}, &recorder).value();
    std::snprintf(m, sizeof m, "%.0f", degraded.makespan_ms);
    failure.add_row({"node1 dies at 30%",
                     m, std::to_string(degraded.rescheduled_tasks)});
  }
  std::printf("%s\n", failure.render().c_str());

  std::size_t task_spans = 0, transfer_spans = 0;
  for (const auto &ev : recorder.events()) {
    if (ev.category == "resman.task") ++task_spans;
    if (ev.category == "resman.transfer") ++transfer_spans;
  }
  std::printf("trace of the degraded run: %zu task spans, %zu transfer spans\n",
              task_spans, transfer_spans);
  std::printf("%s\n", everest::obs::summary_table(recorder).c_str());

  // (d) fault sweep: sampled node-fault plans at rising rates. node0 is
  // spared so every plan keeps a survivor and stays schedulable. The sweep
  // self-checks: every task must still complete, and a degraded run must
  // not beat the clean one.
  int violations = 0;
  {
    // 4 nodes: tight enough that losing capacity actually moves the
    // makespan instead of disappearing into scheduling slack.
    const auto nodes = cluster_of(4);
    std::vector<std::string> node_names;
    for (const auto &n : nodes.nodes) node_names.push_back(n.name);

    er::ResourceManager clean_rm(nodes);
    build_traffic_dag(clean_rm, 48, 7);
    const auto clean = clean_rm.run().value();

    everest::support::Table sweep({"fault rate", "faulted nodes",
                                   "makespan [ms]", "slowdown",
                                   "rescheduled"});
    for (double rate : {0.0, 0.125, 0.25, 0.5, 0.75}) {
      er::ResourceManager rm(nodes);
      build_traffic_dag(rm, 48, 7);
      auto faults = rs::sample_node_faults(/*seed=*/11, node_names, rate,
                                           clean.makespan_ms, "node0");
      rm.inject_failures(faults);
      auto r = rm.run().value();
      if (r.tasks.size() != rm.task_count()) {
        std::printf("VIOLATION: only %zu of %zu tasks completed at rate %g\n",
                    r.tasks.size(), rm.task_count(), rate);
        ++violations;
      }
      if (r.makespan_ms < clean.makespan_ms - 1e-9) {
        std::printf("VIOLATION: degraded makespan %.1f beats clean %.1f\n",
                    r.makespan_ms, clean.makespan_ms);
        ++violations;
      }
      if (r.degraded() != !faults.empty() && rate > 0.0) {
        // A sampled plan may be empty at low rates; only a non-empty plan
        // must leave degraded-mode marks.
        std::printf("VIOLATION: %zu faults but degraded()=%d at rate %g\n",
                    faults.size(), r.degraded(), rate);
        ++violations;
      }
      char m[32], s[32];
      std::snprintf(m, sizeof m, "%.0f", r.makespan_ms);
      std::snprintf(s, sizeof s, "%.2fx", r.makespan_ms / clean.makespan_ms);
      sweep.add_row({std::to_string(rate),
                     std::to_string(r.faulted_nodes.size()), m, s,
                     std::to_string(r.rescheduled_tasks)});
    }
    std::printf("%s\n", sweep.render().c_str());
  }

  std::printf("shape: makespan falls with nodes until the chain dominates;\n"
              "HEFT <= FIFO; transfer-aware placement moves fewer bytes;\n"
              "failures cost a bounded makespan hit via rescheduling;\n"
              "the fault sweep degrades smoothly and loses no work.\n");
  if (violations > 0) {
    std::printf("FAILED: %d self-check violation(s)\n", violations);
    return 1;
  }
  return 0;
}
