// E12 (paper §III): PCIe-attached Alveo vs network-attached cloudFPGA.
// Sweeps the compute-to-data ratio of a kernel and runs it end to end on
// both attachments (same HLS schedule, different link + clock). Expected
// shape: the 10G network attachment loses badly on data-heavy kernels but
// converges on compute-dense ones; the crossover shifts with transfer size.

#include <cstdio>

#include "hls/scheduler.hpp"
#include "olympus/olympus.hpp"
#include "platform/network.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace eh = everest::hls;
namespace ep = everest::platform;
namespace eo = everest::olympus;

namespace {

/// Synthesizes a kernel report with a given data size and compute density
/// (cycles of work per input byte) — the knob of this experiment.
eh::KernelReport synthetic_kernel(std::int64_t bytes, double cycles_per_byte) {
  eh::KernelReport r;
  r.name = "synthetic";
  r.input_bytes = bytes;
  r.output_bytes = bytes / 8;
  r.total_cycles = static_cast<std::int64_t>(bytes * cycles_per_byte);
  r.dataflow_cycles = r.total_cycles;
  r.clock_mhz = 300.0;
  r.area = {50'000, 60'000, 128, 64};
  eh::StageReport stage;
  stage.label = "nest0";
  stage.trip_count = bytes / 8;
  stage.depth = 20;
  stage.ii = 1;
  stage.latency_cycles = r.total_cycles;
  r.stages.push_back(stage);
  return r;
}

}  // namespace

int main() {
  std::printf("== E12: network-attached cloudFPGA vs PCIe-attached Alveo ==\n\n");

  everest::support::Table table({"data", "cycles/byte", "u55c e2e [ms]",
                                 "cloudFPGA e2e [ms]", "winner"});
  int crossovers = 0;
  const std::int64_t mb = 1024 * 1024;
  for (std::int64_t bytes : {4 * mb, 64 * mb}) {
    const char *prev_winner = nullptr;
    for (double density : {0.01, 0.1, 1.0, 10.0, 100.0}) {
      auto kernel = synthetic_kernel(bytes, density);

      eo::Options options;
      options.double_buffering = true;

      eo::SystemGenerator pcie_gen(ep::alveo_u55c());
      ep::Device pcie_dev(ep::alveo_u55c());
      auto pcie_us = pcie_gen.execute_on(pcie_dev, kernel, options);

      eo::SystemGenerator net_gen(ep::cloudfpga());
      ep::Device net_dev(ep::cloudfpga());
      auto net_us = net_gen.execute_on(net_dev, kernel, options);

      if (!pcie_us || !net_us) {
        std::fprintf(stderr, "device run failed\n");
        return 1;
      }
      const char *winner = *pcie_us <= *net_us ? "alveo" : "cloudfpga";
      if (prev_winner && winner != prev_winner) ++crossovers;
      prev_winner = winner;

      char d[32], p[32], n[32];
      std::snprintf(d, sizeof d, "%.2f", density);
      std::snprintf(p, sizeof p, "%.2f", *pcie_us / 1000.0);
      std::snprintf(n, sizeof n, "%.2f", *net_us / 1000.0);
      table.add_row({everest::support::format_bytes(static_cast<double>(bytes)),
                     d, p, n, winner});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: PCIe wins on data-heavy/low-density kernels (96 Gb/s\n"
              "vs 10 Gb/s links); as compute density rises both converge to\n"
              "compute-bound (the slower cloudFPGA clock keeps a gap). The\n"
              "cloudFPGA attachment pays off only when it removes the host\n"
              "hop entirely (ZRLMPI node-to-node pipelines, see network\n"
              "tests), matching the paper's placement of DNN inference\n"
              "pipelines there.\n");
  return 0;
}
