// F3 (paper Fig. 3): the EKL major-absorber kernel. Reproduces the figure's
// two claims: (a) the EKL program is tiny compared to the loop
// implementation ("This code snippet corresponds to 200 lines of Fortran");
// (b) it compiles and computes the same values. Uses google-benchmark to
// time the reference kernel, the EKL interpreter, and the lowered TeIL
// interpreter across g-point counts.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "frontend/ekl_parser.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "transforms/ekl_eval.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/teil_eval.hpp"
#include "usecases/rrtmg.hpp"

namespace rr = everest::usecases::rrtmg;
namespace et = everest::transforms;

namespace {

rr::Data data_for(std::int64_t ng) {
  rr::Config config;
  config.ncells = 64;
  config.ng = ng;
  return rr::make_data(config);
}

void BM_ReferenceKernel(benchmark::State &state) {
  auto data = data_for(state.range(0));
  for (auto _ : state) {
    auto tau = rr::reference_tau(data);
    benchmark::DoNotOptimize(tau);
  }
}
BENCHMARK(BM_ReferenceKernel)->Arg(8)->Arg(16)->Arg(32);

void BM_EklInterpreter(benchmark::State &state) {
  auto data = data_for(state.range(0));
  auto module = everest::frontend::parse_ekl(rr::ekl_source());
  auto bindings = rr::bindings(data);
  for (auto _ : state) {
    auto out = et::evaluate_ekl(*module.value(), bindings);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EklInterpreter)->Arg(8)->Arg(16);

void BM_TeilInterpreter(benchmark::State &state) {
  auto data = data_for(state.range(0));
  auto module = everest::frontend::parse_ekl(rr::ekl_source());
  auto bindings = rr::bindings(data);
  auto teil = et::lower_ekl_to_teil(*module.value(), bindings);
  for (auto _ : state) {
    auto out = et::evaluate_teil(*teil.value(), bindings.inputs);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TeilInterpreter)->Arg(8)->Arg(16);

void BM_FullCompile(benchmark::State &state) {
  auto data = data_for(8);
  auto bindings = rr::bindings(data);
  for (auto _ : state) {
    auto module = everest::frontend::parse_ekl(rr::ekl_source());
    auto teil = et::lower_ekl_to_teil(*module.value(), bindings);
    benchmark::DoNotOptimize(teil);
  }
}
BENCHMARK(BM_FullCompile);

}  // namespace

int main(int argc, char **argv) {
  std::printf("== F3: EKL RRTMG kernel (Fig. 3) ==\n\n");

  // Code-size claim.
  std::size_t ekl_lines = everest::frontend::count_ekl_lines(rr::ekl_source());
  std::size_t ref_lines = rr::reference_line_count();
  everest::support::Table loc({"implementation", "lines", "ratio"});
  loc.add_row({"EKL (Fig. 3 syntax)", std::to_string(ekl_lines), "1.0x"});
  char ratio[32];
  std::snprintf(ratio, sizeof ratio, "%.1fx",
                static_cast<double>(ref_lines) / ekl_lines);
  loc.add_row({"reference C++ loops (major term only)",
               std::to_string(ref_lines), ratio});
  loc.add_row({"full Fortran RRTMG (paper's count)", "200", "-"});
  std::printf("%s\n", loc.render().c_str());

  // Correctness across g-point sweeps.
  everest::support::Table correctness({"ng", "max |EKL - ref|",
                                       "max |TeIL - ref|"});
  for (std::int64_t ng : {4, 8, 16, 32}) {
    auto data = data_for(ng);
    auto module = everest::frontend::parse_ekl(rr::ekl_source());
    auto bindings = rr::bindings(data);
    auto direct = et::evaluate_ekl(*module.value(), bindings);
    auto teil = et::lower_ekl_to_teil(*module.value(), bindings);
    auto lowered = et::evaluate_teil(*teil.value(), bindings.inputs);
    auto ref = rr::reference_tau(data);
    char e1[32], e2[32];
    std::snprintf(e1, sizeof e1, "%.2e",
                  everest::support::max_abs_diff(direct.value().at("tau").data(),
                                                 ref.data()));
    std::snprintf(e2, sizeof e2, "%.2e",
                  everest::support::max_abs_diff(lowered.value().at("tau").data(),
                                                 ref.data()));
    correctness.add_row({std::to_string(ng), e1, e2});
  }
  std::printf("%s\n", correctness.render().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
