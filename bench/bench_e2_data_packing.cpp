// E2 (paper §V-C, ref [25] "Iris"): data packing for bandwidth. Sweeps
// element widths and compares naive one-element-per-bus-word transport
// against packed words; reports effective bandwidth and transfer time on the
// u55c HBM model. Expected shape: packing wins grow as elements narrow
// (512/16 = 32x), and packing of 64-bit data is a no-op.

#include <cstdio>

#include "platform/memory.hpp"
#include "support/table.hpp"

namespace ep = everest::platform;

int main() {
  std::printf("== E2: data packing for high bandwidth utilization ==\n\n");

  auto memory = ep::alveo_u55c().memory;
  const std::int64_t payload = 512LL * 1024 * 1024;  // 512 MiB stream
  const int bus_bits = 512;

  everest::support::Table table({"element bits", "naive eff.", "packed eff.",
                                 "naive [ms]", "packed [ms]", "speedup"});
  for (int bits : {8, 16, 24, 32, 48, 64}) {
    double eff_naive = ep::naive_packing_efficiency(bits, bus_bits);
    double eff_packed = ep::packed_packing_efficiency(bits, bus_bits);

    auto time_ms = [&](double eff) {
      ep::MemoryStream s;
      s.bytes = payload;
      s.packing_efficiency = eff;
      for (int c = 0; c < 8; ++c) s.channels.push_back(c);
      return ep::contention_time_seconds({s}, memory) * 1e3;
    };
    double t_naive = time_ms(eff_naive);
    double t_packed = time_ms(eff_packed);

    char en[32], epk[32], tn[32], tp[32], sp[32];
    std::snprintf(en, sizeof en, "%.3f", eff_naive);
    std::snprintf(epk, sizeof epk, "%.3f", eff_packed);
    std::snprintf(tn, sizeof tn, "%.2f", t_naive);
    std::snprintf(tp, sizeof tp, "%.2f", t_packed);
    std::snprintf(sp, sizeof sp, "%.1fx", t_naive / t_packed);
    table.add_row({std::to_string(bits), en, epk, tn, tp, sp});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: speedup = bus/element for divisors of 512; 48-bit\n"
              "packs imperfectly (10 per word, 93.8%%); 64-bit is already\n"
              "bus-aligned.\n");
  return 0;
}
