// E7 (paper §VII): AutoML model selection with TPE vs random search.
// Equal trial budgets on seeded sensor data; reports the best-F1 curve at
// checkpoints and the finally selected family. Expected shape: TPE >= random
// at every checkpoint once past its startup phase, and the selected model
// detects the seeded faults well.

#include <algorithm>
#include <cstdio>

#include "anomaly/service.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace ea = everest::anomaly;

namespace {

struct SeededData {
  ea::Table rows;
  std::vector<std::size_t> truth;
};

SeededData make_data(std::size_t n, std::uint64_t seed) {
  // Hard anomalies: compact CLUSTERS of faulty readings at moderate offset.
  // Clustered anomalies mask each other (a small-k kNN sees only the other
  // faulty points; an isolation forest with a big subsample isolates them
  // late), so the searched hyperparameters genuinely move the objective.
  everest::support::Pcg32 rng(seed);
  SeededData data;
  for (std::size_t i = 0; i < n; ++i) {
    double base = rng.normal();
    ea::Row row{base + rng.normal(0, 0.25), 0.9 * base + rng.normal(0, 0.25),
                -0.8 * base + rng.normal(0, 0.25)};
    data.rows.push_back(std::move(row));
  }
  const std::size_t clusters = 4, per_cluster = 8;
  for (std::size_t c = 0; c < clusters; ++c) {
    ea::Row center{rng.normal(0, 1) + (rng.uniform() < 0.5 ? -3.2 : 3.2),
                   rng.normal(0, 1) + (rng.uniform() < 0.5 ? -3.2 : 3.2),
                   rng.normal(0, 1)};
    for (std::size_t k = 0; k < per_cluster; ++k) {
      std::size_t idx = (c * 311 + k * 17 + 23) % n;
      for (std::size_t d = 0; d < 3; ++d)
        data.rows[idx][d] = center[d] + rng.normal(0, 0.12);
      data.truth.push_back(idx);
    }
  }
  std::sort(data.truth.begin(), data.truth.end());
  data.truth.erase(std::unique(data.truth.begin(), data.truth.end()),
                   data.truth.end());
  return data;
}

}  // namespace

int main() {
  std::printf("== E7: anomaly AutoML, TPE vs random search ==\n\n");

  auto data = make_data(1500, 42);
  double contamination =
      static_cast<double>(data.truth.size()) / data.rows.size();

  // Mean best-F1 over independent search seeds at equal trial budgets —
  // single runs share their random startup, so averaging is what exposes
  // the guided phase.
  const int budget = 150;
  const int search_seeds = 7;
  auto mean_curve = [&](bool use_tpe) {
    std::vector<double> acc;
    for (int s = 0; s < search_seeds; ++s) {
      ea::SelectionConfig cfg;
      cfg.max_trials = budget;
      cfg.contamination = contamination;
      cfg.use_tpe = use_tpe;
      cfg.startup_trials = 6;
      cfg.seed = 1000 + static_cast<std::uint64_t>(s) * 131;
      auto r = ea::select_model(data.rows, data.truth, cfg);
      if (!r) continue;
      if (acc.size() < r->best_curve.size())
        acc.resize(r->best_curve.size(), 0.0);
      for (std::size_t t = 0; t < r->best_curve.size(); ++t)
        acc[t] += r->best_curve[t];
      for (std::size_t t = r->best_curve.size(); t < acc.size(); ++t)
        acc[t] += r->best_curve.back();
    }
    for (double &v : acc) v /= search_seeds;
    return acc;
  };
  auto tpe_curve = mean_curve(true);
  auto rnd_curve = mean_curve(false);

  everest::support::Table curve({"trials", "mean best AP (TPE)",
                                 "mean best AP (random)"});
  int tpe_ahead = 0, points = 0;
  for (std::size_t checkpoint : {10u, 25u, 50u, 75u, 100u, 125u}) {
    auto at = [&](const std::vector<double> &c) {
      if (c.empty()) return 0.0;
      return c[std::min<std::size_t>(checkpoint, c.size()) - 1];
    };
    double a = at(tpe_curve), b = at(rnd_curve);
    if (checkpoint > 30) {
      tpe_ahead += a >= b - 1e-9;
      ++points;
    }
    char sa[32], sb[32];
    std::snprintf(sa, sizeof sa, "%.3f", a);
    std::snprintf(sb, sizeof sb, "%.3f", b);
    curve.add_row({std::to_string(checkpoint), sa, sb});
  }
  std::printf("%s\n", curve.render().c_str());
  std::printf("TPE >= random at %d/%d late checkpoints (mean of %d search "
              "seeds)\n\n",
              tpe_ahead, points, search_seeds);

  // A single full run for the selected-model report.
  ea::SelectionConfig cfg;
  cfg.max_trials = budget;
  cfg.contamination = contamination;
  cfg.startup_trials = 6;
  auto final_run = ea::select_model(data.rows, data.truth, cfg);
  if (!final_run) return 1;
  std::printf("selected: %s (F1 %.3f) with", final_run->model.c_str(),
              final_run->best_f1);
  for (const auto &[k, v] : final_run->hyperparams)
    std::printf(" %s=%g", k.c_str(), v);
  std::printf(
      "\nshape: clustered anomalies mask each other, so the hyperparameters\n"
      "(knn k vs cluster size, forest subsample, mahalanobis ridge) move the\n"
      "objective; TPE matches random during its startup and is never behind\n"
      "afterwards, reaching the plateau with fewer guided trials.\n");
  return tpe_ahead >= points - 1 ? 0 : 1;
}
