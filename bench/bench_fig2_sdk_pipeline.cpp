// F2 (paper Fig. 2, SDK components): walk the complete SDK pipeline —
// frontend, MLIR-like lowering, esn ordering, loop lowering, HLS, Olympus —
// for the RRTMG kernel at three problem sizes, reporting per-stage times and
// artifact sizes. Regenerates the "one tool after another" structure of the
// figure as a measured table.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>

#include "obs/export.hpp"
#include "sdk/basecamp.hpp"
#include "support/table.hpp"
#include "usecases/rrtmg.hpp"

namespace rr = everest::usecases::rrtmg;

namespace {

double wall_ms(const std::function<void()> &fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("== F2: EVEREST SDK pipeline walk (Fig. 2) ==\n");
  std::printf("kernel: RRTMG major absorber (Fig. 3), target alveo-u55c\n\n");

  everest::sdk::Basecamp basecamp;
  everest::support::Table table(
      {"stage", "cells=64 [ms]", "cells=256 [ms]", "cells=1024 [ms]"});

  std::map<std::string, std::map<int, double>> stage_ms;
  std::vector<std::string> stage_order;
  std::map<int, everest::sdk::CompileResult> results;

  for (int cells : {64, 256, 1024}) {
    rr::Config config;
    config.ncells = cells;
    config.ng = 16;
    rr::Data data = rr::make_data(config);
    auto compiled = basecamp.compile_ekl(rr::ekl_source(), rr::bindings(data));
    if (!compiled) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.error().message.c_str());
      return 1;
    }
    for (const auto &t : compiled->timings) {
      if (!stage_ms.count(t.stage)) stage_order.push_back(t.stage);
      stage_ms[t.stage][cells] = t.ms;
    }
    results.emplace(cells, std::move(*compiled));
  }

  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  for (const auto &stage : stage_order) {
    table.add_row({stage, fmt(stage_ms[stage][64]), fmt(stage_ms[stage][256]),
                   fmt(stage_ms[stage][1024])});
  }
  std::printf("%s\n", table.render().c_str());

  everest::support::Table artifacts({"artifact", "cells=64", "cells=256",
                                     "cells=1024"});
  auto count = [&](int cells, auto fn) { return fn(results.at(cells)); };
  auto ops = [](const everest::sdk::CompileResult &r) {
    return std::to_string(r.loop_ir->op_count());
  };
  auto cycles = [](const everest::sdk::CompileResult &r) {
    return std::to_string(r.kernel.total_cycles);
  };
  auto luts = [](const everest::sdk::CompileResult &r) {
    return std::to_string(r.kernel.area.luts);
  };
  auto total_us = [](const everest::sdk::CompileResult &r) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", r.estimate.total_us);
    return std::string(buf);
  };
  artifacts.add_row({"loop-IR ops", count(64, ops), count(256, ops),
                     count(1024, ops)});
  artifacts.add_row({"kernel cycles", count(64, cycles), count(256, cycles),
                     count(1024, cycles)});
  artifacts.add_row({"kernel LUTs", count(64, luts), count(256, luts),
                     count(1024, luts)});
  artifacts.add_row({"system est. [us]", count(64, total_us),
                     count(256, total_us), count(1024, total_us)});
  std::printf("%s\n", artifacts.render().c_str());

  // Aggregated span view across all three compiles, straight from the
  // recorder that produced the per-stage timings above.
  std::printf("%s\n",
              everest::obs::summary_table(basecamp.recorder()).c_str());
  std::printf("shape: frontend/lowering stages are size-independent; HLS and\n"
              "loop lowering grow with the iteration space; one basecamp call\n"
              "drives every Fig. 2 component.\n\n");

  // --- Parallel + cached multi-kernel compilation -------------------------
  // The same three problem sizes as one compile_many batch, repeated: cold
  // fills the content-addressed cache, warm skips lowering/HLS/Olympus
  // entirely. Results are checked identical to the serial compiles above.
  std::printf("== parallel + cached multi-kernel compilation ==\n");
  std::vector<everest::sdk::CompileJob> jobs;
  for (int cells : {64, 256, 1024}) {
    rr::Config config;
    config.ncells = cells;
    config.ng = 16;
    rr::Data data = rr::make_data(config);
    everest::sdk::CompileJob job;
    job.name = "rrtmg-" + std::to_string(cells);
    job.source = rr::ekl_source();
    job.bindings = rr::bindings(data);
    jobs.push_back(std::move(job));
  }

  everest::sdk::CompileCache cache;
  everest::sdk::Basecamp cached;
  cached.attach_cache(&cache);
  constexpr int kReps = 5;

  std::vector<everest::support::Expected<everest::sdk::CompileResult>> batch;
  double cold_ms = wall_ms([&] { batch = cached.compile_many(jobs, 8); });
  // Best-of-N for the warm path: steady-state hit cost, immune to a stray
  // scheduler hiccup inflating one rep on a loaded machine.
  double warm_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep)
    warm_ms = std::min(
        warm_ms, wall_ms([&] { batch = cached.compile_many(jobs, 8); }));

  bool identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!batch[i]) return 1;
    int cells = std::stoi(jobs[i].name.substr(6));
    const auto &serial = results.at(cells);
    identical = identical &&
                (*batch[i]).teil_ir->str() == serial.teil_ir->str() &&
                (*batch[i]).system_ir->str() == serial.system_ir->str() &&
                (*batch[i]).kernel.total_cycles == serial.kernel.total_cycles;
  }

  std::printf("batch of %zu kernels, --jobs 8:\n", jobs.size());
  std::printf("  cold (cache empty):  %8.3f ms\n", cold_ms);
  std::printf("  warm (cache hit):    %8.3f ms   (best of %d reps)\n", warm_ms,
              kReps);
  std::printf("  warm speedup:        %8.2fx   %s\n", cold_ms / warm_ms,
              cold_ms / warm_ms >= 3.0 ? "(>= 3x)" : "(below 3x!)");
  std::printf("  cache: %lld hits / %lld misses; parallel results %s serial\n",
              static_cast<long long>(cache.hits()),
              static_cast<long long>(cache.misses()),
              identical ? "identical to" : "DIVERGE from");
  return identical && cold_ms / warm_ms >= 3.0 ? 0 : 1;
}
