// E1 (paper §V-C, ref [24]): Olympus kernel replication with the memory bus
// split into lanes. Two sweeps:
//   (a) a compiled compute-bound streaming kernel: speedup is linear in
//       replicas until the fabric (BRAM for datapath buffers) is exhausted;
//   (b) a memory-bound kernel (synthetic cycles/byte knob): speedup
//       flattens exactly where the lanes saturate the HBM.

#include <cstdio>

#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "numerics/tensor.hpp"
#include "olympus/olympus.hpp"
#include "support/table.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/teil_to_loops.hpp"

namespace et = everest::transforms;
namespace eo = everest::olympus;
namespace eh = everest::hls;

namespace {

void sweep(const eh::KernelReport &kernel, const eo::Options &base,
           const char *label) {
  std::printf("-- %s --\n", label);
  eo::SystemGenerator gen(everest::platform::alveo_u55c());
  everest::support::Table table({"replicas", "lanes(ch/repl)", "compute [us]",
                                 "memory [us]", "total [us]", "speedup",
                                 "eff. BW [GB/s]", "fits"});
  double baseline = 0.0;
  for (int replicas : {1, 2, 4, 8, 16, 32}) {
    eo::Options options = base;
    options.replicas = replicas;
    auto est = gen.estimate(kernel, options);
    if (!est) return;
    if (replicas == 1) baseline = est->total_us;
    char c[32], m[32], t[32], s[32], bw[32];
    std::snprintf(c, sizeof c, "%.1f", est->compute_us);
    std::snprintf(m, sizeof m, "%.1f", est->memory_us);
    std::snprintf(t, sizeof t, "%.1f", est->total_us);
    std::snprintf(s, sizeof s, "%.2fx", baseline / est->total_us);
    std::snprintf(bw, sizeof bw, "%.0f", est->effective_bandwidth_gbps);
    table.add_row({std::to_string(replicas),
                   std::to_string(est->channels_per_replica), c, m, t, s, bw,
                   est->fits ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("== E1: Olympus bus lanes & kernel replication ==\n\n");

  // (a) Compiled streaming kernel (compute-bound at one replica).
  auto module = everest::frontend::parse_ekl(R"(
kernel saxpy
index i
input x[i]
input y[i]
input a
r = a * x[i] + y[i]
output r
)").value();
  et::EklBindings bind;
  const std::int64_t n = 16384;
  bind.inputs.emplace("x", everest::numerics::Tensor({n}));
  bind.inputs.emplace("y", everest::numerics::Tensor({n}));
  bind.inputs.emplace("a", everest::numerics::Tensor::scalar(2.0));
  auto teil = et::lower_ekl_to_teil(*module, bind).value();
  auto loops = et::lower_teil_to_loops(*teil).value();
  auto kernel = eh::schedule_kernel(*loops).value();
  eo::Options tiled;
  tiled.plm_tile_bytes = 16 * 1024;
  sweep(kernel, tiled, "compiled saxpy, 16k elements (compute-bound)");

  // (b) Memory-bound kernel: 0.006 cycles of work per byte, 256 MiB stream.
  eh::KernelReport heavy;
  heavy.name = "stream_scan";
  heavy.input_bytes = 256LL * 1024 * 1024;
  heavy.output_bytes = 32LL * 1024 * 1024;
  heavy.total_cycles = static_cast<std::int64_t>(heavy.input_bytes * 0.006);
  heavy.dataflow_cycles = heavy.total_cycles;
  heavy.area = {20'000, 25'000, 32, 16};
  eh::StageReport stage;
  stage.label = "nest0";
  stage.trip_count = heavy.input_bytes / 64;
  stage.ii = 1;
  stage.depth = 12;
  stage.latency_cycles = heavy.total_cycles;
  heavy.stages.push_back(stage);
  sweep(heavy, eo::Options{}, "synthetic stream kernel (memory-bound past "
                              "~8 replicas)");

  std::printf("shape: (a) linear speedup while compute-bound; the BRAM cost\n"
              "of replicated datapath buffers is what stops fitting first.\n"
              "(b) speedup follows compute until memory_us becomes the max()\n"
              "term — the lanes already move 460 GB/s, so more replicas stop\n"
              "helping: the bandwidth wall of ref [24].\n");
  return 0;
}
