// Serving-layer benchmark: offered load vs dynamic batch size. Sweeps the
// batcher's max_batch across a nominal load (generous queue bounds — nothing
// should shed) and an overload (tight per-tenant queue bounds — the server
// must shed with Unavailable instead of queueing without bound), and reports
// throughput and the per-request latency distribution. Self-checking: a
// non-zero shed rate at nominal load is a VIOLATION (exit 1) — the QoS
// policies must only fire under pressure.

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "frontend/condrust_parser.hpp"
#include "obs/trace.hpp"
#include "runtime/dfg_executor.hpp"
#include "serve/server.hpp"
#include "support/table.hpp"

namespace es = everest::serve;
namespace er = everest::runtime;

namespace {

constexpr const char *kGraph = R"(
fn serve_pipe(xs: Stream<f64>) -> Stream<f64> {
    let scaled = mul2(xs);
    let biased = add1(scaled);
    return biased;
}
)";

std::shared_ptr<er::NodeRegistry> make_registry() {
  auto registry = std::make_shared<er::NodeRegistry>();
  registry->register_node("mul2",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v *= 2.0;
                            return out;
                          });
  registry->register_node("add1",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v += 1.0;
                            return out;
                          });
  return registry;
}

struct CellResult {
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  double mean_batch = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

CellResult run_cell(const std::shared_ptr<const everest::ir::Module> &graph,
                    const std::shared_ptr<const er::NodeRegistry> &registry,
                    std::size_t max_batch, std::size_t queue_bound,
                    std::size_t requests) {
  CellResult cell;
  cell.requests = requests;

  everest::obs::TraceRecorder recorder;
  auto backend = es::DfgBackend::create(graph, registry, {}, &recorder);
  if (!backend) return cell;
  std::vector<std::unique_ptr<es::Backend>> backends;
  backends.push_back(std::move(*backend));

  es::ServerOptions options;
  options.batch.max_batch = max_batch;
  options.batch.max_wait_us = 200.0;
  options.dispatchers = 2;
  options.queue_bound = queue_bound;
  auto server = es::Server::create(std::move(backends), options, &recorder);
  if (!server) return cell;
  (*server)->start();

  double t0 = (*server)->now_us();
  std::vector<std::future<es::Response>> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    es::Request req;
    req.tenant = i % 2 == 0 ? "tenant-a" : "tenant-b";
    req.inputs["xs"] = {static_cast<double>(i), static_cast<double>(i) * 0.5};
    auto submitted = (*server)->submit(std::move(req));
    if (!submitted) {
      ++cell.shed;
      continue;
    }
    futures.push_back(std::move(*submitted));
  }
  (*server)->drain();
  for (auto &future : futures) {
    es::Response response = future.get();
    if (response.status.is_ok()) ++cell.completed;
  }
  double elapsed_us = (*server)->now_us() - t0;
  (*server)->stop();

  auto stats = (*server)->stats();
  cell.mean_batch = stats.batch_size.mean();
  cell.shed += static_cast<std::size_t>(stats.shed_deadline);
  if (elapsed_us > 0.0) {
    cell.throughput_rps =
        static_cast<double>(cell.completed) / (elapsed_us * 1e-6);
  }
  for (const auto &[name, summary] : recorder.histograms()) {
    if (name == "serve.latency_us.tenant-a") {
      cell.p50_us = summary.p50;
      cell.p95_us = summary.p95;
      cell.p99_us = summary.p99;
    }
  }
  return cell;
}

std::string fmt(double v, const char *pattern = "%.1f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

}  // namespace

int main() {
  std::printf("== serve: offered load vs dynamic batch size ==\n\n");

  auto graph = everest::frontend::parse_condrust(kGraph);
  if (!graph) {
    std::fprintf(stderr, "parse failed: %s\n", graph.error().message.c_str());
    return 1;
  }
  auto registry = make_registry();

  const std::size_t kRequests = 400;
  const std::size_t kNominalBound = 10'000;  // never sheds at this load
  const std::size_t kOverloadBound = 16;     // forces queue-bound shedding

  everest::support::Table table({"load", "max_batch", "completed", "shed",
                                 "mean batch", "throughput [req/s]",
                                 "p50 [us]", "p95 [us]", "p99 [us]"});
  bool violation = false;
  for (std::size_t max_batch : {1u, 4u, 16u}) {
    for (bool overload : {false, true}) {
      auto cell = run_cell(*graph, registry, max_batch,
                           overload ? kOverloadBound : kNominalBound,
                           kRequests);
      table.add_row({overload ? "overload" : "nominal",
                     std::to_string(max_batch), std::to_string(cell.completed),
                     std::to_string(cell.shed), fmt(cell.mean_batch, "%.2f"),
                     fmt(cell.throughput_rps, "%.0f"), fmt(cell.p50_us),
                     fmt(cell.p95_us), fmt(cell.p99_us)});
      if (!overload && cell.shed > 0) {
        std::fprintf(stderr,
                     "VIOLATION: %zu requests shed at nominal load "
                     "(max_batch=%zu, bound=%zu)\n",
                     cell.shed, max_batch, kNominalBound);
        violation = true;
      }
      if (!overload && cell.completed != kRequests) {
        std::fprintf(stderr,
                     "VIOLATION: only %zu/%zu requests completed at nominal "
                     "load (max_batch=%zu)\n",
                     cell.completed, kRequests, max_batch);
        violation = true;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (violation) return 1;
  std::printf("nominal-load shed rate: 0%% across all batch sizes (bound held)\n");
  return 0;
}
