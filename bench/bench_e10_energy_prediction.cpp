// E10 (paper §II-B / §VIII): renewable-energy prediction backtest. Sweeps
// the WRF ensemble size and history length; reports MAE of the Kernel Ridge
// model vs the raw-forecast and persistence baselines, averaged over seeds.
// Expected shape: model < raw forecast < persistence; errors fall with
// ensemble size (the paper's "increasing the number of WRF runs ... is a
// crucial advantage").

#include <cstdio>

#include "support/table.hpp"
#include "usecases/energy.hpp"

namespace en = everest::usecases::energy;

int main() {
  std::printf("== E10: wind-farm energy prediction backtest ==\n\n");

  const int seeds = 5;
  everest::support::Table table({"ensemble", "MAE model [MW]",
                                 "MAE raw fc [MW]", "MAE persist [MW]",
                                 "model vs raw"});
  double prev_model = 1e300;
  bool improves = true;
  for (int ensemble : {1, 2, 4, 8}) {
    double m = 0, r = 0, p = 0;
    for (int s = 0; s < seeds; ++s) {
      auto result = en::backtest(24 * 120, ensemble,
                                 42 + static_cast<std::uint64_t>(s));
      if (!result) {
        std::fprintf(stderr, "backtest failed: %s\n",
                     result.error().message.c_str());
        return 1;
      }
      m += result->mae_model;
      r += result->mae_forecast;
      p += result->mae_persistence;
    }
    m /= seeds;
    r /= seeds;
    p /= seeds;
    char mm[32], rr[32], pp[32], g[32];
    std::snprintf(mm, sizeof mm, "%.3f", m);
    std::snprintf(rr, sizeof rr, "%.3f", r);
    std::snprintf(pp, sizeof pp, "%.3f", p);
    std::snprintf(g, sizeof g, "-%.0f%%", 100.0 * (1.0 - m / r));
    table.add_row({std::to_string(ensemble), mm, rr, pp, g});
    improves = improves && m <= prev_model * 1.05;
    prev_model = m;
  }
  std::printf("%s\n", table.render().c_str());

  // History-length sweep at a fixed ensemble.
  everest::support::Table history({"history [days]", "MAE model [MW]"});
  for (int days : {60, 90, 120, 180}) {
    double m = 0;
    for (int s = 0; s < seeds; ++s) {
      auto result = en::backtest(24 * static_cast<std::size_t>(days), 3,
                                 42 + static_cast<std::uint64_t>(s));
      if (!result) return 1;
      m += result->mae_model;
    }
    char mm[32];
    std::snprintf(mm, sizeof mm, "%.3f", m / seeds);
    history.add_row({std::to_string(days), mm});
  }
  std::printf("%s\n", history.render().c_str());
  std::printf("shape: MAE ordering model < raw < persistence at every point;\n"
              "ensemble growth trend %s.\n",
              improves ? "holds" : "VIOLATED");
  return improves ? 0 : 1;
}
