// E11 (paper §II-C / §VIII): air-quality ensembles. Sweeps ensemble size and
// the decision threshold margin, reporting corrected wind RMSE, decision
// outcomes, and average cost. Expected shape: larger ensembles reduce RMSE
// and the total cost of wrong decisions (missed peaks are 4x a reduction
// day).

#include <cstdio>

#include "support/table.hpp"
#include "usecases/airquality.hpp"

namespace aq = everest::usecases::airquality;

int main() {
  std::printf("== E11: air-quality ensemble forecasting & decisions ==\n\n");

  const int runs = 60;
  everest::support::Table table({"ensemble", "wind RMSE [m/s]",
                                 "miss rate", "false-alarm rate",
                                 "avg cost [kEUR]"});
  double first_rmse = 0.0, last_rmse = 0.0;
  for (int ensemble : {1, 2, 3, 5, 9, 15}) {
    double rmse = 0, cost = 0;
    int misses = 0, alarms = 0, decisions = 0;
    for (int seed = 0; seed < runs; ++seed) {
      aq::Config config;
      config.ensemble_size = ensemble;
      config.seed = 9000 + static_cast<std::uint64_t>(seed);
      auto report = aq::run_scenario(config);
      if (!report) {
        std::fprintf(stderr, "scenario failed: %s\n",
                     report.error().message.c_str());
        return 1;
      }
      rmse += report->forecast_rmse_speed;
      cost += report->cost_keur;
      misses += report->missed_peaks;
      alarms += report->false_alarms;
      decisions += 3;  // three daily decisions per 72h scenario
    }
    if (ensemble == 1) first_rmse = rmse / runs;
    last_rmse = rmse / runs;
    char r[32], mr[32], fr[32], c[32];
    std::snprintf(r, sizeof r, "%.3f", rmse / runs);
    std::snprintf(mr, sizeof mr, "%.3f",
                  static_cast<double>(misses) / decisions);
    std::snprintf(fr, sizeof fr, "%.3f",
                  static_cast<double>(alarms) / decisions);
    std::snprintf(c, sizeof c, "%.1f", cost / runs);
    table.add_row({std::to_string(ensemble), r, mr, fr, c});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: RMSE falls with ensemble size (%.3f -> %.3f m/s);\n"
              "decision cost follows. A reduction day costs 30 kEUR, a\n"
              "missed pollution peak 120 kEUR.\n",
              first_rmse, last_rmse);
  return last_rmse < first_rmse ? 0 : 1;
}
