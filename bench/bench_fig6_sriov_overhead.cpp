// F6 (paper Fig. 6 + §VI-B): the virtualization stack. Measures VM I/O
// overhead across transfer sizes for SR-IOV passthrough ("near-native
// performance") versus software-emulated devices, and the dynamic VF
// plug/unplug latency that mitigates SR-IOV's static pool.

#include <cstdio>

#include "platform/xrt.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "virt/virt.hpp"

namespace ev = everest::virt;
namespace ep = everest::platform;

namespace {

double transfer_time_us(ep::Device &dev, std::int64_t bytes) {
  double before = dev.now_us();
  auto bo = dev.alloc(bytes);
  if (!bo) return -1.0;
  (void)dev.sync_to_device(*bo);
  (void)dev.free(*bo);
  return dev.now_us() - before;
}

}  // namespace

int main() {
  std::printf("== F6: SR-IOV virtualization overhead (Fig. 6) ==\n\n");

  ev::VirtNode node("phys0", 32, {ep::alveo_u55c()}, 8);
  auto vm = node.create_vm("guest", 8).value();
  auto vf_sriov = node.attach_vf(vm, 0, ev::IoMode::SrIov).value();
  auto vf_emul = node.attach_vf(vm, 0, ev::IoMode::Emulated).value();
  auto *dev_sriov = node.vm_device(vm, vf_sriov).value();
  auto *dev_emul = node.vm_device(vm, vf_emul).value();
  auto &dev_native = node.native_device(0);

  everest::support::Table table({"transfer", "native [us]", "SR-IOV [us]",
                                 "SR-IOV ovh", "emulated [us]",
                                 "emulated ovh"});
  for (std::int64_t kb : {4, 64, 1024, 16384, 262144}) {
    std::int64_t bytes = kb * 1024;
    double native = transfer_time_us(dev_native, bytes);
    double sriov = transfer_time_us(*dev_sriov, bytes);
    double emul = transfer_time_us(*dev_emul, bytes);
    char n[32], s[32], so[32], e[32], eo[32];
    std::snprintf(n, sizeof n, "%.1f", native);
    std::snprintf(s, sizeof s, "%.1f", sriov);
    std::snprintf(so, sizeof so, "+%.0f%%", (sriov / native - 1.0) * 100.0);
    std::snprintf(e, sizeof e, "%.1f", emul);
    std::snprintf(eo, sizeof eo, "+%.0f%%", (emul / native - 1.0) * 100.0);
    table.add_row({everest::support::format_bytes(static_cast<double>(bytes)),
                   n, s, so, e, eo});
  }
  std::printf("%s\n", table.render().c_str());

  // Dynamic plug/unplug latency vs attached-VF count.
  everest::support::Table plug({"attached VFs before op", "hotplug [ms]"});
  ev::VirtNode fresh("phys1", 64, {ep::alveo_u55c()}, 8);
  auto vm2 = fresh.create_vm("guest", 8).value();
  for (int i = 0; i < 5; ++i) {
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.0f", fresh.plug_latency_ms());
    plug.add_row({std::to_string(i), ms});
    (void)fresh.attach_vf(vm2, 0);
  }
  std::printf("%s\n", plug.render().c_str());
  std::printf("shape: SR-IOV stays within ~5%% of native at all sizes;\n"
              "emulated I/O is >2x; hotplug costs ~120-160 ms, cheap enough\n"
              "for the resource allocator's dynamic VF reassignment.\n");
  return 0;
}
