// F4 (paper Fig. 4): the ConDRust map-matching coordination program.
// Reproduces the figure's point — the imperative Rust-subset program yields
// a deterministic parallel dataflow — by executing it over worker counts
// 1..16 and checking (a) bit-identical outputs and (b) throughput scaling of
// the stateless stages.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "frontend/condrust_parser.hpp"
#include "runtime/dfg_executor.hpp"
#include "support/table.hpp"
#include "usecases/traffic.hpp"

namespace tr = everest::usecases::traffic;
namespace er = everest::runtime;

namespace {

struct Setup {
  std::shared_ptr<everest::ir::Module> module;
  er::NodeRegistry registry;
  std::map<std::string, er::Stream> inputs;
  tr::FcdTrace trace;
};

Setup make_setup(int points) {
  Setup s;
  auto net = tr::make_grid_network(16, 1.0, 5);
  s.trace = tr::make_trace(net, points, 0.04, 11);
  s.module = everest::frontend::parse_condrust(tr::mapmatch_condrust_source())
                 .value_or(nullptr);
  tr::register_mapmatch_operators(s.registry, net);
  s.inputs["points"] = tr::trace_to_stream(s.trace);
  return s;
}

void BM_MapMatchWorkers(benchmark::State &state) {
  static Setup setup = make_setup(2000);
  int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto out = er::execute_dfg(*setup.module, setup.registry, setup.inputs,
                               workers);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MapMatchWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char **argv) {
  std::printf("== F4: ConDRust map matching (Fig. 4) ==\n\n");

  auto setup = make_setup(1000);
  if (!setup.module) {
    std::fprintf(stderr, "parse failed\n");
    return 1;
  }

  everest::support::Table table({"workers", "identical to w=1",
                                 "streaming accuracy"});
  auto baseline =
      er::execute_dfg(*setup.module, setup.registry, setup.inputs, 1);
  if (!baseline) {
    std::fprintf(stderr, "execution failed: %s\n",
                 baseline.error().message.c_str());
    return 1;
  }
  std::vector<int> matched;
  for (const auto &rec : baseline->at("best"))
    matched.push_back(static_cast<int>(rec[0]));
  double acc = tr::matching_accuracy(matched, setup.trace.true_segments);

  bool all_identical = true;
  for (int workers : {1, 2, 4, 8, 16}) {
    auto out =
        er::execute_dfg(*setup.module, setup.registry, setup.inputs, workers);
    bool same = out.has_value() && out->at("best") == baseline->at("best");
    all_identical = all_identical && same;
    char a[32];
    std::snprintf(a, sizeof a, "%.1f%%", 100.0 * acc);
    table.add_row({std::to_string(workers), same ? "yes" : "NO", a});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("determinism (ConDRust guarantee): %s\n\n",
              all_identical ? "HOLDS" : "VIOLATED");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return all_identical ? 0 : 1;
}
