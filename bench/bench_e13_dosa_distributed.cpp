// E13 (paper §V-C, refs [18][19]): DOSA — organic compilation of DNN
// inference onto distributed network-attached cloudFPGA nodes. Partitions
// the traffic use case's speed-prediction CNN across 1..6 nodes and reports
// the latency/throughput tradeoff: throughput rises with nodes until the
// 10G ZRLMPI hops become the bottleneck, while single-inference latency
// strictly grows with hop count.

#include <cstdio>

#include "olympus/dosa.hpp"
#include "support/table.hpp"
#include "usecases/speednet.hpp"

namespace dosa = everest::olympus::dosa;
namespace sn = everest::usecases::speednet;

int main() {
  std::printf("== E13: DOSA distributed DNN inference on cloudFPGA ==\n\n");

  auto model = sn::load_model(42);
  if (!model) return 1;
  auto layers = dosa::analyze_model(*model);
  if (!layers) {
    std::fprintf(stderr, "analyze failed: %s\n", layers.error().message.c_str());
    return 1;
  }

  everest::support::Table per_layer({"layer", "op", "MACs", "weights [B]",
                                     "activation [B]", "DSP"});
  for (const auto &l : *layers) {
    char macs[32];
    std::snprintf(macs, sizeof macs, "%.0f", l.macs);
    per_layer.add_row({l.name, l.op, macs, std::to_string(l.weight_bytes),
                       std::to_string(l.activation_bytes),
                       std::to_string(l.area.dsps)});
  }
  std::printf("%s\n", per_layer.render().c_str());

  auto sweep = [](const std::vector<dosa::LayerCost> &ls, const char *label) {
    std::printf("-- %s --\n", label);
    everest::support::Table plans({"nodes", "stages", "latency [us]",
                                   "network [us]", "throughput [inf/s]",
                                   "feasible"});
    for (int nodes = 1; nodes <= 6; ++nodes) {
      auto plan = dosa::partition(ls, nodes);
      if (!plan) return false;
      char lat[32], net[32], tp[32];
      std::snprintf(lat, sizeof lat, "%.1f", plan->pipeline_latency_us);
      std::snprintf(net, sizeof net, "%.1f", plan->network_us_per_inference);
      std::snprintf(tp, sizeof tp, "%.0f", plan->throughput_inf_per_s);
      plans.add_row({std::to_string(nodes),
                     std::to_string(plan->stages.size()), lat, net, tp,
                     plan->feasible ? "yes" : "NO"});
    }
    std::printf("%s", plans.render().c_str());
    auto best = dosa::best_plan(ls, 6);
    if (!best) return false;
    std::printf("best: %d node(s), %.0f inf/s, %.1f us latency\n\n",
                best->nodes, best->throughput_inf_per_s,
                best->pipeline_latency_us);
    return true;
  };

  if (!sweep(*layers, "speednet (tiny: 29 us total compute)")) return 1;

  // A compute-heavy CNN (8 x Conv1D 64ch/len256/k9) where stage compute
  // dwarfs a ZRLMPI hop.
  everest::frontend::OnnxModel deep;
  deep.name = "deepnet";
  deep.inputs.push_back({"x", {64, 256}});
  std::string prev = "x";
  for (int i = 0; i < 8; ++i) {
    std::string w = "w" + std::to_string(i);
    deep.initializers.emplace(w,
                              everest::numerics::Tensor({64, 64, 9}, 0.01));
    everest::frontend::OnnxNode node;
    node.op = "Conv1D";
    node.name = "conv" + std::to_string(i);
    node.inputs = {prev, w};
    node.output = "a" + std::to_string(i);
    deep.nodes.push_back(node);
    prev = node.output;
  }
  deep.outputs.push_back(prev);
  auto deep_layers = dosa::analyze_model(deep);
  if (!deep_layers) return 1;
  if (!sweep(*deep_layers, "deepnet (heavy: 8 x Conv1D 64ch)")) return 1;

  std::printf("shape: for the tiny model the 30+ us ZRLMPI hop never pays\n"
              "off (1 node optimal); for the heavy model stage balancing\n"
              "raises throughput until hop time caps it — DOSA's best_plan\n"
              "picks the knee in both cases.\n");
  return 0;
}
