// Cluster serving benchmark: shards everest::serve across simulated FPGA
// nodes and sweeps the node count 1 -> 8 over the same request trace.
// Throughput is measured on the simulated device timeline (max per-node
// accelerator busy time — nodes run in parallel), so the sweep is
// deterministic and CI-stable. Emits one BENCH_serve_cluster.json and
// self-checks the serving invariants; any violation makes the process exit
// non-zero:
//   - scaling: throughput at 8 nodes >= 5x the single-node run;
//   - correctness: every node count produces byte-identical outputs to the
//     single-node run on the same trace;
//   - QoS: zero requests shed at nominal load (shedding only under the
//     overload segment's tight queue bounds, where it must fire);
//   - elasticity: VF hot-plug scales up under backlog and back down after.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frontend/condrust_parser.hpp"
#include "serve/cluster.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace es = everest::serve;
namespace er = everest::runtime;
using everest::support::Json;

namespace {

constexpr const char *kGraph = R"(
fn serve_pipe(xs: Stream<f64>) -> Stream<f64> {
    let scaled = mul2(xs);
    let biased = add1(scaled);
    return biased;
}
)";

std::shared_ptr<er::NodeRegistry> make_registry() {
  auto registry = std::make_shared<er::NodeRegistry>();
  registry->register_node("mul2",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v *= 2.0;
                            return out;
                          });
  registry->register_node("add1",
                          [](const std::vector<const er::Record *> &in) {
                            er::Record out = *in.at(0);
                            for (double &v : out) v += 1.0;
                            return out;
                          });
  return registry;
}

constexpr int kTenants = 64;
constexpr int kRequestsPerTenant = 8;
constexpr int kRequests = kTenants * kRequestsPerTenant;

std::string tenant_name(int t) { return "tenant-" + std::to_string(t); }

es::ClusterOptions base_options(int nodes) {
  es::ClusterOptions options;
  options.nodes = nodes;
  options.replicas = std::min(3, nodes);
  options.server.batch.max_batch = 16;
  options.server.batch.max_wait_us = 200.0;
  options.server.dispatchers = 1;
  options.server.queue_bound = 4'096;
  return options;
}

struct TraceResult {
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t forwarded = 0;
  double busy_us = 0.0;          // max per-node accelerator busy time
  double forward_net_us = 0.0;   // simulated fabric time spent on forwards
  double max_node_share = 0.0;   // largest node's fraction of admissions
  /// request index -> output records, for byte-identity checks.
  std::map<int, std::map<std::string, er::Record>> outputs;
  /// tenant -> sorted request latencies (us).
  std::map<std::string, std::vector<double>> latencies;
};

// Runs the fixed trace through a cluster of `nodes` nodes. The whole trace
// is submitted before start() so batch formation and load-aware routing see
// the same deterministic queue-depth sequence on every run.
everest::support::Expected<TraceResult> run_trace(
    const std::shared_ptr<const everest::ir::Module> &graph,
    const std::shared_ptr<const er::NodeRegistry> &registry, int nodes) {
  auto cluster = es::Cluster::create(graph, registry, base_options(nodes));
  if (!cluster) return cluster.error();

  std::vector<std::pair<int, std::future<es::Response>>> futures;
  futures.reserve(kRequests);
  TraceResult result;
  for (int round = 0; round < kRequestsPerTenant; ++round) {
    for (int t = 0; t < kTenants; ++t) {
      const int index = round * kTenants + t;
      es::Request request;
      request.tenant = tenant_name(t);
      request.inputs["xs"] = {static_cast<double>(index),
                              static_cast<double>(index) * 0.5};
      auto submitted = (*cluster)->submit(std::move(request));
      if (!submitted) continue;  // counted below via cluster stats
      futures.emplace_back(index, std::move(*submitted));
    }
  }

  (*cluster)->start();
  (*cluster)->drain();
  for (auto &[index, future] : futures) {
    es::Response response = future.get();
    if (!response.status.is_ok()) continue;
    ++result.completed;
    result.outputs[index] = response.outputs;
    result.latencies[response.tenant].push_back(response.latency_us);
  }
  (*cluster)->stop();

  auto stats = (*cluster)->stats();
  result.shed = stats.shed + (stats.admitted - result.completed);
  result.forwarded = stats.forwarded;
  for (const auto &node : stats.nodes) {
    result.busy_us = std::max(result.busy_us, node.device_busy_us);
    result.forward_net_us += node.forward_net_us;
    if (stats.admitted > 0) {
      result.max_node_share =
          std::max(result.max_node_share,
                   static_cast<double>(node.routed) /
                       static_cast<double>(stats.admitted));
    }
  }
  for (auto &[tenant, lat] : result.latencies)
    std::sort(lat.begin(), lat.end());
  return result;
}

double percentile(const std::vector<double> &sorted, double p) {
  if (sorted.empty()) return 0.0;
  auto index = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

bool identical_outputs(const TraceResult &a, const TraceResult &b) {
  return a.outputs == b.outputs;
}

std::string fmt(double v, const char *pattern = "%.1f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

}  // namespace

int main(int argc, char **argv) {
  std::string out_path = "BENCH_serve_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  std::printf("== serve: cluster front door, node sweep 1 -> 8 ==\n\n");

  auto graph = everest::frontend::parse_condrust(kGraph);
  if (!graph) {
    std::fprintf(stderr, "parse failed: %s\n", graph.error().message.c_str());
    return 1;
  }
  auto registry = make_registry();

  std::vector<std::string> violations;
  auto violation = [&](std::string msg) {
    std::fprintf(stderr, "VIOLATION: %s\n", msg.c_str());
    violations.push_back(std::move(msg));
  };

  // ---- Scaling sweep: same trace, node count 1 -> 8 --------------------
  const int kNodeCounts[] = {1, 2, 4, 8};
  std::map<int, TraceResult> runs;
  for (int nodes : kNodeCounts) {
    auto run = run_trace(*graph, registry, nodes);
    if (!run) {
      std::fprintf(stderr, "cluster run (%d nodes) failed: %s\n", nodes,
                   run.error().message.c_str());
      return 1;
    }
    runs.emplace(nodes, std::move(*run));
  }

  const TraceResult &single = runs.at(1);
  const double single_busy = single.busy_us;
  everest::support::Table table({"nodes", "completed", "shed", "forwarded",
                                 "busy [us]", "throughput [req/s]", "speedup",
                                 "max share", "identical"});
  Json scaling = Json::array();
  double speedup_8x = 0.0;
  for (int nodes : kNodeCounts) {
    const TraceResult &run = runs.at(nodes);
    const double throughput =
        run.busy_us > 0.0
            ? static_cast<double>(run.completed) / (run.busy_us * 1e-6)
            : 0.0;
    const double speedup = run.busy_us > 0.0 ? single_busy / run.busy_us : 0.0;
    const bool identical = identical_outputs(single, run);
    if (nodes == 8) speedup_8x = speedup;

    table.add_row({std::to_string(nodes), std::to_string(run.completed),
                   std::to_string(run.shed), std::to_string(run.forwarded),
                   fmt(run.busy_us), fmt(throughput, "%.0f"),
                   fmt(speedup, "%.2f"), fmt(run.max_node_share, "%.3f"),
                   identical ? "yes" : "NO"});

    if (run.completed != kRequests)
      violation("nominal load, " + std::to_string(nodes) + " nodes: only " +
                std::to_string(run.completed) + "/" +
                std::to_string(kRequests) + " requests completed");
    if (run.shed != 0)
      violation("nominal load, " + std::to_string(nodes) + " nodes: " +
                std::to_string(run.shed) + " requests shed");
    if (!identical)
      violation(std::to_string(nodes) +
                "-node outputs differ from the single-node run");

    Json row = Json::object();
    row.set("nodes", nodes);
    row.set("requests", kRequests);
    row.set("completed", run.completed);
    row.set("shed", run.shed);
    row.set("forwarded", run.forwarded);
    row.set("busy_us", run.busy_us);
    row.set("forward_net_us", run.forward_net_us);
    row.set("throughput_rps", throughput);
    row.set("speedup", speedup);
    row.set("max_node_share", run.max_node_share);
    row.set("identical", identical);
    scaling.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());

  if (speedup_8x < 5.0)
    violation("8-node speedup " + fmt(speedup_8x, "%.2f") + " < 5.0");

  // Per-tenant tail latency on the 8-node run.
  Json tenants = Json::array();
  for (const auto &[tenant, latencies] : runs.at(8).latencies) {
    const double p99 = percentile(latencies, 0.99);
    if (!(p99 > 0.0))
      violation("tenant " + tenant + ": p99 latency not positive");
    Json row = Json::object();
    row.set("tenant", tenant);
    row.set("requests", latencies.size());
    row.set("p50_us", percentile(latencies, 0.50));
    row.set("p99_us", p99);
    tenants.push_back(std::move(row));
  }

  // ---- Overload segment: tight queue bounds must shed, books must close --
  std::int64_t overload_shed = 0;
  std::int64_t overload_completed = 0;
  std::int64_t overload_submitted = 0;
  {
    es::ClusterOptions options = base_options(8);
    options.server.queue_bound = 8;  // per tenant per node: forces shedding
    auto cluster = es::Cluster::create(*graph, registry, options);
    if (!cluster) {
      std::fprintf(stderr, "overload cluster failed: %s\n",
                   cluster.error().message.c_str());
      return 1;
    }
    std::vector<std::future<es::Response>> futures;
    const int kOverloadTenants = 8;
    const int kPerTenant = 200;
    for (int r = 0; r < kPerTenant; ++r) {
      for (int t = 0; t < kOverloadTenants; ++t) {
        es::Request request;
        request.tenant = tenant_name(t);
        request.inputs["xs"] = {static_cast<double>(r), 1.0};
        ++overload_submitted;
        auto submitted = (*cluster)->submit(std::move(request));
        if (submitted) futures.push_back(std::move(*submitted));
      }
    }
    (*cluster)->start();
    (*cluster)->drain();
    for (auto &future : futures)
      if (future.get().status.is_ok()) ++overload_completed;
    (*cluster)->stop();
    auto stats = (*cluster)->stats();
    overload_shed = stats.shed;
    if (overload_shed == 0)
      violation("overload segment shed nothing despite queue_bound=8");
    if (stats.admitted + stats.shed != overload_submitted)
      violation("overload accounting: admitted + shed != submitted");
    if (overload_completed != stats.admitted)
      violation("overload segment: admitted requests did not all complete");
  }

  // ---- Elasticity segment: VF hot-plug follows the queue-depth gauge ----
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
  int peak_vfs = 0;
  int final_vfs = 0;
  {
    es::ClusterOptions options = base_options(1);
    options.min_vfs = 1;
    options.max_vfs = 4;
    options.scale_up_depth = 32.0;
    options.scale_down_depth = 2.0;
    auto cluster = es::Cluster::create(*graph, registry, options);
    if (!cluster) {
      std::fprintf(stderr, "elastic cluster failed: %s\n",
                   cluster.error().message.c_str());
      return 1;
    }
    std::vector<std::future<es::Response>> futures;
    for (int i = 0; i < 256; ++i) {
      es::Request request;
      request.tenant = tenant_name(i % kTenants);
      request.inputs["xs"] = {static_cast<double>(i), 2.0};
      auto submitted = (*cluster)->submit(std::move(request));
      if (submitted) futures.push_back(std::move(*submitted));
    }
    for (int pass = 0; pass < 4; ++pass) (*cluster)->autoscale();
    peak_vfs = (*cluster)->stats().nodes.at(0).vfs;
    (*cluster)->start();
    (*cluster)->drain();
    for (auto &future : futures) future.get();
    for (int pass = 0; pass < 4; ++pass) (*cluster)->autoscale();
    auto stats = (*cluster)->stats();
    scale_ups = stats.scale_ups;
    scale_downs = stats.scale_downs;
    final_vfs = stats.nodes.at(0).vfs;
    (*cluster)->stop();
    if (scale_ups < 1)
      violation("elasticity: backlog of 256 requests triggered no scale-up");
    if (peak_vfs <= options.min_vfs)
      violation("elasticity: VF count never grew past min_vfs");
    if (scale_downs < 1 || final_vfs != options.min_vfs)
      violation("elasticity: idle cluster did not scale back to min_vfs");
  }
  std::printf("elasticity: %lld scale-ups to %d VFs, %lld scale-downs "
              "back to %d\n",
              static_cast<long long>(scale_ups), peak_vfs,
              static_cast<long long>(scale_downs), final_vfs);

  // ---- Report ----------------------------------------------------------
  es::ClusterOptions probe = base_options(1);
  Json doc = Json::object();
  doc.set("suite", "serve_cluster");
  Json network = Json::object();
  network.set("gbps", probe.network.gbps);
  network.set("latency_us", probe.network.latency_us);
  {
    // Round-trip price of one forwarded request, straight from the model.
    auto pricing = es::Cluster::create(*graph, registry, probe);
    if (pricing)
      network.set("forward_cost_us",
                  (*pricing)->forward_cost_us(probe.request_bytes));
  }
  doc.set("network", std::move(network));
  doc.set("scaling", std::move(scaling));
  doc.set("speedup_8x", speedup_8x);
  doc.set("tenants", std::move(tenants));
  Json overload = Json::object();
  overload.set("submitted", overload_submitted);
  overload.set("completed", overload_completed);
  overload.set("shed", overload_shed);
  doc.set("overload", std::move(overload));
  Json elastic = Json::object();
  elastic.set("scale_ups", scale_ups);
  elastic.set("scale_downs", scale_downs);
  elastic.set("peak_vfs", peak_vfs);
  elastic.set("final_vfs", final_vfs);
  doc.set("elastic", std::move(elastic));
  Json violation_list = Json::array();
  for (const std::string &v : violations) violation_list.push_back(v);
  doc.set("violations", std::move(violation_list));

  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << doc.dump(2) << "\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!violations.empty()) {
    std::fprintf(stderr, "%zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("self-check passed: 8-node speedup %.2fx, outputs "
              "byte-identical, shed only under overload\n",
              speedup_8x);
  return 0;
}
