// E3 (paper §V-C, ref [16]): PLM double buffering and read/execute/write
// pipelining. Ablates the two Olympus options on kernels with controlled
// compute-to-memory ratios; the theory the table should confirm:
//   serialized            = compute + memory
//   db + dataflow         = max(compute, memory) + one tile fill
// so the overlap hides the smaller of the two phases. A compiled dot-product
// row grounds the sweep in a real kernel.

#include <cstdio>

#include "frontend/ekl_parser.hpp"
#include "hls/scheduler.hpp"
#include "numerics/tensor.hpp"
#include "olympus/olympus.hpp"
#include "support/table.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/teil_to_loops.hpp"

namespace et = everest::transforms;
namespace eo = everest::olympus;
namespace eh = everest::hls;

namespace {

/// Synthetic kernel moving 64 MiB with `ratio` = compute_us : memory_us.
eh::KernelReport ratio_kernel(double ratio) {
  eh::KernelReport r;
  r.name = "ratio";
  r.input_bytes = 56LL * 1024 * 1024;
  r.output_bytes = 8LL * 1024 * 1024;
  // 64 MiB over 460 GB/s ~= 146 us of memory time.
  double memory_us = 146.0;
  r.total_cycles = static_cast<std::int64_t>(ratio * memory_us * 300.0);
  r.dataflow_cycles = r.total_cycles;
  r.area = {30'000, 35'000, 64, 32};
  eh::StageReport stage;
  stage.label = "nest0";
  stage.trip_count = r.input_bytes / 64;
  stage.ii = 1;
  stage.depth = 16;
  stage.latency_cycles = r.total_cycles;
  r.stages.push_back(stage);
  return r;
}

struct Row {
  double compute, memory, serial, db, full;
};

Row measure(const eh::KernelReport &kernel) {
  eo::SystemGenerator gen(everest::platform::alveo_u55c());
  eo::Options serial;
  serial.double_buffering = false;
  serial.dataflow_pipelining = false;
  eo::Options db = serial;
  db.double_buffering = true;
  eo::Options full;
  full.double_buffering = true;
  full.dataflow_pipelining = true;

  auto e_serial = gen.estimate(kernel, serial).value();
  auto e_db = gen.estimate(kernel, db).value();
  auto e_full = gen.estimate(kernel, full).value();
  return {e_serial.compute_us, e_serial.memory_us, e_serial.total_us,
          e_db.total_us, e_full.total_us};
}

}  // namespace

int main() {
  std::printf("== E3: double buffering + read/execute/write pipelining ==\n\n");

  everest::support::Table table({"kernel", "compute [us]", "memory [us]",
                                 "serialized [us]", "double-buffer [us]",
                                 "db+dataflow [us]", "hidden"});
  auto add = [&](const char *label, const Row &r) {
    char c[32], m[32], s[32], d[32], f[32], h[32];
    std::snprintf(c, sizeof c, "%.1f", r.compute);
    std::snprintf(m, sizeof m, "%.1f", r.memory);
    std::snprintf(s, sizeof s, "%.1f", r.serial);
    std::snprintf(d, sizeof d, "%.1f", r.db);
    std::snprintf(f, sizeof f, "%.1f", r.full);
    std::snprintf(h, sizeof h, "%.0f%%", 100.0 * (r.serial - r.full) / r.serial);
    table.add_row({label, c, m, s, d, f, h});
  };

  add("memory-heavy (1:4)", measure(ratio_kernel(0.25)));
  add("balanced (1:1)", measure(ratio_kernel(1.0)));
  add("compute-heavy (4:1)", measure(ratio_kernel(4.0)));

  // A compiled kernel for grounding (compute-dominated dot product).
  {
    auto module = everest::frontend::parse_ekl(R"(
kernel dot
index i
input a[i]
input b[i]
d = sum(i) a[i] * b[i]
output d
)").value();
    et::EklBindings bind;
    bind.inputs.emplace("a", everest::numerics::Tensor({1 << 20}));
    bind.inputs.emplace("b", everest::numerics::Tensor({1 << 20}));
    auto teil = et::lower_ekl_to_teil(*module, bind).value();
    auto loops = et::lower_teil_to_loops(*teil).value();
    auto kernel = eh::schedule_kernel(*loops).value();
    add("compiled dot 1M", measure(kernel));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("shape: serialized = compute + memory exactly; db+dataflow\n"
              "tracks max(compute, memory) + one tile fill, so the hidden\n"
              "fraction peaks for the balanced kernel (~50%%) and shrinks as\n"
              "either phase dominates — the ref [16] overlap result.\n");
  return 0;
}
