// E4 (paper §VIII): "Custom data formats can significantly speed up the
// computation, trading off resource requirements and accuracy." Compiles the
// RRTMG kernel with the base2 formats and reports accuracy (vs the f64
// reference) against HLS area and Olympus latency.

#include <cstdio>

#include "sdk/basecamp.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "transforms/base2_legalize.hpp"
#include "transforms/teil_eval.hpp"
#include "usecases/rrtmg.hpp"

namespace rr = everest::usecases::rrtmg;
namespace et = everest::transforms;

int main() {
  std::printf("== E4: custom data formats (base2) on RRTMG ==\n\n");

  rr::Config config;
  config.ncells = 64;
  config.ng = 8;
  rr::Data data = rr::make_data(config);
  auto bindings = rr::bindings(data);
  auto reference = rr::reference_tau(data);

  everest::sdk::Basecamp basecamp;
  everest::support::Table table({"format", "bits", "max abs err", "rel err",
                                 "LUT", "DSP", "est. total [us]"});

  double ref_scale = 0.0;
  for (double v : reference.data()) ref_scale = std::max(ref_scale, std::fabs(v));

  for (const char *format :
       {"f64", "f32", "float<8,7>", "posit<32,2>", "posit<16,1>",
        "fixed<32,24>", "fixed<16,12>", "fixed<8,6>"}) {
    everest::sdk::CompileOptions options;
    options.number_format = format;
    auto compiled = basecamp.compile_ekl(rr::ekl_source(), bindings, options);
    if (!compiled) {
      std::fprintf(stderr, "compile failed for %s: %s\n", format,
                   compiled.error().message.c_str());
      return 1;
    }

    // Numeric behaviour of the format (quantizing TeIL evaluation).
    double err = 0.0;
    if (std::string(format) == "f64") {
      auto out = et::evaluate_teil(*compiled->teil_ir, bindings.inputs);
      err = everest::support::max_abs_diff(out.value().at("tau").data(),
                                           reference.data());
    } else {
      auto fmt = et::make_format(format);
      auto out =
          et::evaluate_teil(*compiled->teil_ir, bindings.inputs, fmt->get());
      err = everest::support::max_abs_diff(out.value().at("tau").data(),
                                           reference.data());
    }

    char e[32], re[32], t[32];
    std::snprintf(e, sizeof e, "%.2e", err);
    std::snprintf(re, sizeof re, "%.2e", err / ref_scale);
    std::snprintf(t, sizeof t, "%.1f", compiled->estimate.total_us);
    table.add_row({format, std::to_string(compiled->datapath_bits), e, re,
                   std::to_string(compiled->kernel.area.luts),
                   std::to_string(compiled->kernel.area.dsps), t});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: narrower formats cut LUT/DSP and latency while error\n"
              "grows; fixed<16,12> keeps ~1e-3 relative error at a fraction\n"
              "of the f64 resources (the paper's accuracy/resource tradeoff).\n");
  return 0;
}
