// F5 (paper Fig. 5): the EVEREST dialect stack and its lowering paths.
// Regenerates the figure as executable evidence: every frontend enters the
// MLIR-like stack, every lowering path verifies, and the esn contraction
// reordering (the compiler-level optimization the stack decouples) is
// measured against the naive order.
//
// The trailing bench_rewrite section compares the worklist rewrite driver
// against the legacy full-module sweep on EKL->TeIL modules (ops visited and
// wall clock), asserts the two produce byte-identical modules, and writes
// BENCH_rewrite.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dialects/registry.hpp"
#include "ir/builder.hpp"
#include "ir/pass.hpp"
#include "sdk/basecamp.hpp"
#include "sdk/compile_cache.hpp"
#include "support/thread_pool.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "numerics/tensor.hpp"
#include "support/alloc_hook.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "transforms/canonicalize.hpp"
#include "transforms/cfdlang_to_teil.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"
#include "usecases/traffic.hpp"

namespace et = everest::transforms;
namespace rr = everest::usecases::rrtmg;

namespace {

/// An EKL kernel shaped to stress the rewrite drivers: a 16-deep chain of
/// literal arithmetic (constant folding cascades), a 24-deep chain of ops
/// whose results are never output (dead-code cascades), and one live output.
/// The legacy sweep pays a full module walk per cascade step; the worklist
/// driver unwinds both chains by re-enqueueing only affected ops.
std::string rewrite_stress_source() {
  std::string src = "kernel rewrite_stress\nindex i\ninput a[i]\n";
  src += "c0 = 1.5 * 2.0\n";
  for (int k = 1; k < 16; ++k) {
    src += "c";
    src += std::to_string(k);
    src += " = c";
    src += std::to_string(k - 1);
    src += k % 2 == 0 ? " * 1.5\n" : " + 1.0\n";
  }
  src += "d0 = a[i] + 1.0\n";
  for (int k = 1; k < 24; ++k) {
    src += "d";
    src += std::to_string(k);
    src += " = d";
    src += std::to_string(k - 1);
    src += k % 2 == 0 ? " + 0.5\n" : " * 2.0\n";
  }
  src += "t = a[i] * c15\noutput t\n";
  return src;
}

struct DriverRun {
  everest::ir::RewriteStats stats;
  double wall_us = 0.0;  // best of repetitions
  std::string printed;   // module text after the run
};

/// Runs the full canonicalize pattern set to fixpoint on clones of `teil`
/// under one driver; wall time is the best of `reps` runs.
DriverRun run_driver(const everest::ir::Module &teil,
                     everest::ir::RewriteDriver driver, int reps) {
  DriverRun run;
  auto patterns = et::canonicalize_patterns();
  for (int r = 0; r < reps; ++r) {
    everest::ir::Module copy = everest::ir::clone_module(teil);
    auto start = std::chrono::steady_clock::now();
    auto stats = everest::ir::apply_patterns_greedily(copy, patterns,
                                                      /*max_iterations=*/64,
                                                      driver);
    auto stop = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    if (r == 0 || us < run.wall_us) run.wall_us = us;
    if (r == 0) {
      run.stats = stats;
      run.printed = copy.str();
    }
  }
  return run;
}

/// A synthetic TeIL module of `num_funcs` independent funcs, each an
/// arithmetic chain salted with CSE/DCE fodder — the unit of work the
/// func-anchored pass pipeline shards across the thread pool.
everest::ir::Module build_pass_module(int num_funcs, int ops_per_func) {
  everest::ir::Module m;
  for (int f = 0; f < num_funcs; ++f) {
    std::string sym = "k";
    sym += std::to_string(f);
    auto *func = everest::ir::Operation::create(
        m.arena(), everest::ir::Symbol("teil.func"), {}, {},
        {{"sym_name", everest::ir::Attribute(sym)}}, 1);
    auto &body = func->region(0).add_block();
    everest::ir::OpBuilder b(&body);
    std::vector<everest::ir::Value *> vals;
    vals.push_back(b.constant_f64(1.0 + f));
    vals.push_back(b.constant_f64(2.0 + f));
    for (int i = 0; i < ops_per_func; ++i) {
      auto *lhs = vals[(i * 7 + f) % vals.size()];
      auto *rhs = vals[(i * 5 + 3) % vals.size()];
      const char *name = (i % 2 == 0) ? "arith.addf" : "arith.mulf";
      auto *v = b.create_value(name, {lhs, rhs},
                               everest::ir::Type::floating(64));
      if (i % 4 == 0)
        b.create_value(name, {lhs, rhs}, everest::ir::Type::floating(64));
      if (i % 3 != 0) vals.push_back(v);
    }
    b.create("teil.output", {vals.back()}, {},
             {{"name", everest::ir::Attribute(std::string("out"))}});
    m.body().attach(func);
  }
  return m;
}

/// Module clone the way it worked before the arena fast path, kept in-tree
/// as the measured baseline: per-op heap vectors for operands and result
/// types, a node-based unordered_map for the value remap, and per-key
/// attribute copies. This is exactly the allocation profile clone_module's
/// fast path (exact-capacity inline storage, open-addressed remap table,
/// COW attribute/type handles) took off the global heap.
void generic_clone_block(
    const everest::ir::Block &src, everest::ir::Block &dst,
    std::unordered_map<const everest::ir::Value *, everest::ir::Value *> &map) {
  namespace ei = everest::ir;
  for (std::size_t i = 0; i < src.num_arguments(); ++i)
    map[&src.argument(i)] = &dst.add_argument(src.argument(i).type());
  for (const ei::Operation &op : src) {
    std::vector<ei::Value *> operands;
    operands.reserve(op.num_operands());
    for (std::size_t i = 0; i < op.num_operands(); ++i)
      operands.push_back(map.at(op.operand(i)));
    std::vector<ei::Type> result_types;
    result_types.reserve(op.num_results());
    for (std::size_t i = 0; i < op.num_results(); ++i)
      result_types.push_back(op.result(i)->type());
    ei::Operation *cloned =
        ei::Operation::create(dst.arena(), op.name_symbol(), operands,
                              result_types, {}, op.num_regions());
    for (const auto &attr : op.attributes())
      cloned->set_attr(attr.first, attr.second);
    for (std::size_t i = 0; i < op.num_results(); ++i)
      map[op.result(i)] = cloned->result(i);
    dst.attach(cloned);
    for (std::size_t r = 0; r < op.num_regions(); ++r)
      for (const ei::Block &block : op.region(r).blocks())
        generic_clone_block(block, cloned->region(r).add_block(), map);
  }
}

everest::ir::Module generic_clone_module(const everest::ir::Module &module) {
  everest::ir::Module copy;
  for (const auto &attr : module.op().attributes())
    copy.op().set_attr(attr.first, attr.second);
  std::unordered_map<const everest::ir::Value *, everest::ir::Value *> map;
  generic_clone_block(module.body(), copy.body(), map);
  return copy;
}

/// Canonicalize-as-a-func-pass pipeline over `m`; optional pool and cache.
everest::support::Status run_pass_pipeline(everest::ir::Module &m,
                                           everest::support::ThreadPool *pool,
                                           everest::ir::PassCache *cache) {
  everest::ir::Context pctx;
  everest::ir::PassManager pm(pctx);
  pm.add_func_pass("canonicalize",
                   [](everest::ir::Operation &func, everest::ir::Context &) {
                     return et::canonicalize_func_checked(func);
                   });
  if (pool != nullptr) pm.set_thread_pool(pool);
  if (cache != nullptr) pm.set_pass_cache(cache);
  return pm.run(m);
}

/// One EKL kernel of the bench_fig5 compile set; `salt` keeps each kernel's
/// canonical text (and therefore its cache keys) distinct. The 24-deep
/// statement chain gives the mid-end and backend enough work per kernel
/// that a cache hit (clone of the stored artifacts) is measurably cheaper
/// than a recompile.
std::string compile_bench_source(int salt) {
  std::string s = "kernel bench_k";
  s += std::to_string(salt);
  s += "\nindex i, j\ninput a[i, j]\ninput b[i, j]\n";
  s += "t0 = a[i, j] * b[i, j] + ";
  s += std::to_string(salt);
  s += ".5\n";
  for (int k = 1; k < 48; ++k) {
    s += "t";
    s += std::to_string(k);
    s += " = t";
    s += std::to_string(k - 1);
    s += (k % 3 == 0) ? " * b[i, j] + " : " + a[i, j] * ";
    s += std::to_string((salt + k) % 7);
    s += ".25\n";
  }
  s += "output t47\n";
  return s;
}

/// Concatenated printed IR of every result — the byte-identity witness.
std::string results_text(
    const std::vector<everest::support::Expected<everest::sdk::CompileResult>>
        &results) {
  std::string text;
  for (const auto &r : results) {
    if (!r.has_value()) return "<error: " + r.error().message + ">";
    text += r->teil_ir->str();
    text += r->loop_ir->str();
    text += r->system_ir->str();
  }
  return text;
}

template <typename Fn>
double wall_ms(Fn &&fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  std::printf("== F5: dialect lowering paths (Fig. 5) ==\n\n");
  everest::ir::Context ctx;
  everest::dialects::register_everest_dialects(ctx);

  std::printf("registered dialects:");
  for (const auto &name : ctx.dialect_names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  everest::support::Table paths({"path", "ops in", "ops out", "verified"});
  auto verified = [&](const everest::ir::Module &m) {
    return ctx.verify(m).is_ok() ? "yes" : "NO";
  };

  // ekl -> teil -> loops.
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto ekl = everest::frontend::parse_ekl(rr::ekl_source()).value();
  auto teil = et::lower_ekl_to_teil(*ekl, rr::bindings(data)).value();
  paths.add_row({"ekl -> teil", std::to_string(ekl->op_count()),
                 std::to_string(teil->op_count()), verified(*teil)});
  auto loops = et::lower_teil_to_loops(*teil).value();
  paths.add_row({"teil -> scf/memref loops", std::to_string(teil->op_count()),
                 std::to_string(loops->op_count()), verified(*loops)});

  // cfdlang -> teil.
  auto cfd = everest::frontend::parse_cfdlang(R"(
program helmholtz
input A : [8, 8]
input B : [8, 8]
output C = contract(outer(A, B), 1, 2)
)").value();
  auto cfd_teil = et::lower_cfdlang_to_teil(*cfd).value();
  paths.add_row({"cfdlang -> teil", std::to_string(cfd->op_count()),
                 std::to_string(cfd_teil->op_count()), verified(*cfd_teil)});

  // condrust -> dfg.
  auto dfg = everest::frontend::parse_condrust(
                 everest::usecases::traffic::mapmatch_condrust_source())
                 .value();
  paths.add_row({"condrust -> dfg", "-", std::to_string(dfg->op_count()),
                 verified(*dfg)});

  // teil -> esn -> teil (contraction raising + lowering).
  auto chain = everest::frontend::parse_ekl(R"(
kernel chain
index i, j, k, l
input a[i, j]
input b[j, k]
input c[k, l]
r = sum(j, k) a[i, j] * b[j, k] * c[k, l]
output r
)").value();
  et::EklBindings bind;
  bind.inputs.emplace("a", everest::numerics::Tensor({48, 64}));
  bind.inputs.emplace("b", everest::numerics::Tensor({64, 32}));
  bind.inputs.emplace("c", everest::numerics::Tensor({32, 8}));
  auto chain_teil = et::lower_ekl_to_teil(*chain, bind).value();
  std::size_t raised = et::extract_einsums(*chain_teil);
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"teil -> esn (einsums raised)", "-", std::to_string(raised),
                 verified(*chain_teil)});

  auto einsum = chain_teil->find_all("esn.einsum").at(0);
  auto naive = et::plan_einsum(*einsum, false);
  auto greedy = et::plan_einsum(*einsum, true);
  double esn_flops = et::lower_esn(*chain_teil, true).value();
  (void)esn_flops;
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"esn -> teil.contract chain", "-",
                 std::to_string(chain_teil->op_count()),
                 verified(*chain_teil)});
  std::printf("%s\n", paths.render().c_str());

  everest::support::Table esn({"contraction order", "estimated flops"});
  char n[32], g[32];
  std::snprintf(n, sizeof n, "%.0f", naive.estimated_flops);
  std::snprintf(g, sizeof g, "%.0f", greedy.estimated_flops);
  esn.add_row({"naive left-to-right", n});
  esn.add_row({"esn greedy reorder", g});
  std::printf("%s\nshape: greedy < naive when the chain has a small late "
              "operand.\n\n",
              esn.render().c_str());

  // ---- bench_rewrite: worklist vs legacy sweep on EKL->TeIL->loops ----
  std::printf("== bench_rewrite: worklist vs legacy sweep ==\n\n");
  everest::support::Table rw({"module", "ops", "visits wl", "visits legacy",
                              "ratio", "us wl", "us legacy", "identical"});
  auto json = everest::support::Json::object();
  json.set("bench", "rewrite");
  json.set("pattern_set", "canonicalize");
  auto cases = everest::support::Json::array();
  bool all_identical = true;
  double chain_ratio = 0.0;

  struct Case {
    const char *name;
    std::shared_ptr<everest::ir::Module> teil;
  };
  auto stress_ekl =
      everest::frontend::parse_ekl(rewrite_stress_source()).value();
  et::EklBindings stress_bind;
  stress_bind.inputs.emplace("a", everest::numerics::Tensor({64}));
  auto stress_teil = et::lower_ekl_to_teil(*stress_ekl, stress_bind).value();
  for (const Case &c :
       {Case{"rrtmg_major", teil}, Case{"rewrite_stress", stress_teil}}) {
    DriverRun wl = run_driver(*c.teil, everest::ir::RewriteDriver::Worklist, 25);
    DriverRun legacy =
        run_driver(*c.teil, everest::ir::RewriteDriver::LegacySweep, 25);
    bool identical = wl.printed == legacy.printed &&
                     wl.stats.rewrites == legacy.stats.rewrites;
    all_identical = all_identical && identical;
    double ratio = wl.stats.ops_visited > 0
                       ? static_cast<double>(legacy.stats.ops_visited) /
                             static_cast<double>(wl.stats.ops_visited)
                       : 0.0;
    if (std::string(c.name) == "rewrite_stress") chain_ratio = ratio;
    // Confirm the canonicalized module still lowers down the chain.
    everest::ir::Module copy = everest::ir::clone_module(*c.teil);
    (void)et::canonicalize(copy);
    auto lowered = et::lower_teil_to_loops(copy);
    char ratio_s[32];
    std::snprintf(ratio_s, sizeof ratio_s, "%.2fx", ratio);
    char wl_us[32], lg_us[32];
    std::snprintf(wl_us, sizeof wl_us, "%.1f", wl.wall_us);
    std::snprintf(lg_us, sizeof lg_us, "%.1f", legacy.wall_us);
    rw.add_row({c.name, std::to_string(c.teil->op_count()),
                std::to_string(wl.stats.ops_visited),
                std::to_string(legacy.stats.ops_visited), ratio_s, wl_us,
                lg_us, identical ? "yes" : "NO"});

    auto entry = everest::support::Json::object();
    entry.set("module", c.name);
    entry.set("module_ops", c.teil->op_count());
    entry.set("byte_identical", identical);
    entry.set("visit_ratio", ratio);
    entry.set("wall_speedup",
              wl.wall_us > 0.0 ? legacy.wall_us / wl.wall_us : 0.0);
    entry.set("lowers_to_loops", lowered.has_value());
    auto side = [](const DriverRun &r) {
      auto o = everest::support::Json::object();
      o.set("ops_visited", r.stats.ops_visited);
      o.set("rewrites", r.stats.rewrites);
      o.set("iterations", r.stats.iterations);
      o.set("worklist_pushes", r.stats.worklist_pushes);
      o.set("converged", r.stats.converged);
      o.set("wall_us", r.wall_us);
      return o;
    };
    entry.set("worklist", side(wl));
    entry.set("legacy_sweep", side(legacy));
    cases.push_back(std::move(entry));
  }
  json.set("cases", std::move(cases));
  std::printf("%s\n", rw.render().c_str());
  std::printf("chain visit ratio (legacy/worklist): %.2fx%s; outputs %s\n",
              chain_ratio, chain_ratio >= 2.0 ? " (>= 2x)" : " (< 2x!)",
              all_identical ? "byte-identical" : "DIVERGED");

  std::ofstream out("BENCH_rewrite.json");
  out << json.dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_rewrite.json\n");

  // ---- bench_compile: parallel pass pipeline + incremental compile cache --
  //
  // Three measurements over the same module set, each self-checked for byte
  // identity against the serial cold compile before any speedup is reported:
  //   (a) the func-anchored pass pipeline, serial vs ThreadPool-sharded and
  //       cold vs warm per-pass cache;
  //   (b) end-to-end compile_many, serial vs parallel workers and cold vs
  //       incremental (content + per-pass cache tiers);
  //   (c) the one-kernel-edit story: with warm caches, editing one kernel's
  //       source re-runs only that kernel — proven by the cache counters.
  std::printf("\n== bench_compile: arena IR + parallel passes + cache ==\n\n");
  auto cjson = everest::support::Json::object();
  cjson.set("bench", "compile");

  // (a) Pass pipeline on a 24-func module.
  const int kFuncs = 24, kOpsPerFunc = 40, kReps = 5;
  everest::ir::Module pass_ref = build_pass_module(kFuncs, kOpsPerFunc);

  // (a0) clone_module: the arena fast path vs the generic baseline it
  // replaced. Byte identity against the source text first, then best-of wall
  // clock, then the allocation story when the counting hook is live (it is
  // stubbed out under the sanitizer presets).
  const std::size_t clone_ops = pass_ref.op_count();
  const std::string clone_ref_text = pass_ref.str();
  bool clone_identical;
  {
    everest::ir::Module fast = everest::ir::clone_module(pass_ref);
    everest::ir::Module generic = generic_clone_module(pass_ref);
    clone_identical =
        fast.str() == clone_ref_text && generic.str() == clone_ref_text;
  }
  const int kCloneReps = 20;
  double clone_fast_ms = 0.0, clone_generic_ms = 0.0;
  for (int r = 0; r < kCloneReps; ++r) {
    double ms =
        wall_ms([&] { everest::ir::Module m = everest::ir::clone_module(pass_ref); });
    if (r == 0 || ms < clone_fast_ms) clone_fast_ms = ms;
    ms = wall_ms([&] { everest::ir::Module m = generic_clone_module(pass_ref); });
    if (r == 0 || ms < clone_generic_ms) clone_generic_ms = ms;
  }
  double clone_speedup =
      clone_fast_ms > 0.0 ? clone_generic_ms / clone_fast_ms : 0.0;

  const bool alloc_available = everest::support::alloc_counter_available();
  double allocs_per_op = 0.0, generic_allocs_per_op = 0.0;
  if (alloc_available) {
    everest::support::alloc_counter_reset();
    everest::support::alloc_counter_enable(true);
    {
      everest::ir::Module counted = everest::ir::clone_module(pass_ref);
      everest::support::alloc_counter_enable(false);
    }
    allocs_per_op = static_cast<double>(everest::support::alloc_counter_news()) /
                    static_cast<double>(clone_ops);
    everest::support::alloc_counter_reset();
    everest::support::alloc_counter_enable(true);
    {
      everest::ir::Module counted = generic_clone_module(pass_ref);
      everest::support::alloc_counter_enable(false);
    }
    generic_allocs_per_op =
        static_cast<double>(everest::support::alloc_counter_news()) /
        static_cast<double>(clone_ops);
  }
  // ~zero heap allocations per cloned op: arena slabs and the remap table
  // amortize to a small fraction of an allocation per op.
  bool clone_ok = clone_identical && clone_speedup >= 1.5 &&
                  (!alloc_available || allocs_per_op <= 0.25);
  {
    auto cl = everest::support::Json::object();
    cl.set("module_ops", static_cast<std::int64_t>(clone_ops));
    cl.set("fast_ms", clone_fast_ms);
    cl.set("generic_ms", clone_generic_ms);
    cl.set("speedup_vs_generic", clone_speedup);
    cl.set("target_speedup", 1.5);
    cl.set("byte_identical", clone_identical);
    cl.set("alloc_counter_available", alloc_available);
    cl.set("allocs_per_cloned_op", allocs_per_op);
    cl.set("generic_allocs_per_cloned_op", generic_allocs_per_op);
    cjson.set("clone", std::move(cl));
  }
  std::printf("clone_module (%zu ops): fast %.3fms vs generic %.3fms "
              "(%.2fx), %s\n",
              clone_ops, clone_fast_ms, clone_generic_ms, clone_speedup,
              clone_identical ? "byte-identical" : "DIVERGED");
  if (alloc_available)
    std::printf("clone heap traffic: %.4f allocs/op fast vs %.2f allocs/op "
                "generic\n",
                allocs_per_op, generic_allocs_per_op);
  else
    std::printf("clone heap traffic: alloc counter stubbed (sanitizer "
                "build), gate skipped\n");

  everest::support::ThreadPool pass_pool(4);
  double pass_serial_ms = 0.0, pass_parallel_ms = 0.0;
  double pass_cold_ms = 0.0, pass_warm_ms = 0.0;
  std::string pass_serial_text, pass_parallel_text, pass_warm_text;
  bool pass_ok = true;
  for (int r = 0; r < kReps; ++r) {
    everest::ir::Module m = everest::ir::clone_module(pass_ref);
    double ms = wall_ms([&] {
      pass_ok = pass_ok && run_pass_pipeline(m, nullptr, nullptr).is_ok();
    });
    if (r == 0 || ms < pass_serial_ms) pass_serial_ms = ms;
    if (r == 0) pass_serial_text = m.str();

    everest::ir::Module p = everest::ir::clone_module(pass_ref);
    ms = wall_ms([&] {
      pass_ok = pass_ok && run_pass_pipeline(p, &pass_pool, nullptr).is_ok();
    });
    if (r == 0 || ms < pass_parallel_ms) pass_parallel_ms = ms;
    if (r == 0) pass_parallel_text = p.str();

    everest::sdk::PassResultCache prc;
    everest::ir::Module cold = everest::ir::clone_module(pass_ref);
    ms = wall_ms([&] {
      pass_ok = pass_ok && run_pass_pipeline(cold, nullptr, &prc).is_ok();
    });
    if (r == 0 || ms < pass_cold_ms) pass_cold_ms = ms;
    everest::ir::Module warm = everest::ir::clone_module(pass_ref);
    ms = wall_ms([&] {
      pass_ok = pass_ok && run_pass_pipeline(warm, nullptr, &prc).is_ok();
    });
    if (r == 0 || ms < pass_warm_ms) pass_warm_ms = ms;
    if (r == 0) {
      pass_warm_text = warm.str();
      pass_ok = pass_ok && prc.hits() == kFuncs;  // every func replayed
    }
  }
  bool pass_identical = pass_serial_text == pass_parallel_text &&
                        pass_serial_text == pass_warm_text;
  {
    auto p = everest::support::Json::object();
    p.set("funcs", static_cast<std::int64_t>(kFuncs));
    p.set("serial_ms", pass_serial_ms);
    p.set("parallel_ms", pass_parallel_ms);
    p.set("cache_cold_ms", pass_cold_ms);
    p.set("cache_warm_ms", pass_warm_ms);
    p.set("parallel_speedup",
          pass_parallel_ms > 0.0 ? pass_serial_ms / pass_parallel_ms : 0.0);
    p.set("warm_speedup",
          pass_warm_ms > 0.0 ? pass_cold_ms / pass_warm_ms : 0.0);
    p.set("byte_identical", pass_identical);
    cjson.set("passes", std::move(p));
  }
  std::printf("passes (%d funcs): serial %.2fms, parallel %.2fms, cache cold "
              "%.2fms -> warm %.2fms, %s\n",
              kFuncs, pass_serial_ms, pass_parallel_ms, pass_cold_ms,
              pass_warm_ms,
              pass_identical ? "byte-identical" : "DIVERGED");

  // (b) End-to-end compile_many over the kernel set.
  const int kKernels = 10;
  std::vector<everest::sdk::CompileJob> jobs;
  for (int k = 0; k < kKernels; ++k) {
    everest::sdk::CompileJob job;
    job.name = "bench_k" + std::to_string(k);
    job.source = compile_bench_source(k);
    job.bindings.inputs.emplace("a", everest::numerics::Tensor({48, 48}));
    job.bindings.inputs.emplace("b", everest::numerics::Tensor({48, 48}));
    jobs.push_back(std::move(job));
  }

  // Serial and parallel cold compiles, best of three each: the parallel
  // speedup is a gated claim, so both sides get the same noise treatment as
  // the warm runs below (fresh result vectors keep destruction of the
  // previous run outside the timed region).
  everest::sdk::Basecamp serial_bc;
  std::vector<everest::support::Expected<everest::sdk::CompileResult>>
      serial_results;
  double compile_serial_ms = 0.0;
  for (int r = 0; r < 3; ++r) {
    std::vector<everest::support::Expected<everest::sdk::CompileResult>> run;
    double ms = wall_ms([&] { run = serial_bc.compile_many(jobs, 1); });
    if (r == 0 || ms < compile_serial_ms) compile_serial_ms = ms;
    serial_results = std::move(run);
  }
  std::string compile_serial_text = results_text(serial_results);

  everest::sdk::Basecamp parallel_bc;
  std::vector<everest::support::Expected<everest::sdk::CompileResult>>
      parallel_results;
  double compile_parallel_ms = 0.0;
  for (int r = 0; r < 3; ++r) {
    std::vector<everest::support::Expected<everest::sdk::CompileResult>> run;
    double ms = wall_ms([&] { run = parallel_bc.compile_many(jobs, 4); });
    if (r == 0 || ms < compile_parallel_ms) compile_parallel_ms = ms;
    parallel_results = std::move(run);
  }
  bool compile_parallel_identical =
      results_text(parallel_results) == compile_serial_text;
  double compile_parallel_speedup =
      compile_parallel_ms > 0.0 ? compile_serial_ms / compile_parallel_ms : 0.0;
  // The speedup floor scales with the machine: four workers must beat serial
  // by >=1.25x wherever there are cores to run them; on a single-core host
  // parallelism cannot win, so the gate degrades to "the worker pool costs
  // at most modest overhead" instead of demanding the impossible.
  const unsigned hw_cores =
      std::max(1u, std::thread::hardware_concurrency());
  const double parallel_target = hw_cores >= 2 ? 1.25 : 0.80;

  everest::sdk::CompileCache cache;
  everest::sdk::Basecamp cached_bc;
  cached_bc.attach_cache(&cache);
  std::vector<everest::support::Expected<everest::sdk::CompileResult>>
      cached_results;
  double compile_cold_ms =
      wall_ms([&] { cached_results = cached_bc.compile_many(jobs, 1); });
  // Warm runs land in a fresh vector: reusing `cached_results` would put the
  // destruction of the previous ten CompileResults inside the timed region.
  // Best of three, same as the pass-pipeline section.
  std::vector<everest::support::Expected<everest::sdk::CompileResult>>
      warm_results;
  double compile_warm_ms = 0.0;
  for (int r = 0; r < 3; ++r) {
    std::vector<everest::support::Expected<everest::sdk::CompileResult>> run;
    double ms = wall_ms([&] { run = cached_bc.compile_many(jobs, 1); });
    if (r == 0 || ms < compile_warm_ms) compile_warm_ms = ms;
    warm_results = std::move(run);
  }
  bool compile_warm_identical =
      results_text(warm_results) == compile_serial_text;
  double incremental_speedup =
      compile_warm_ms > 0.0 ? compile_serial_ms / compile_warm_ms : 0.0;
  if (!serial_results.empty() && serial_results.front().has_value()) {
    std::printf("cold per-kernel stages:");
    for (const auto &t : serial_results.front()->timings)
      std::printf(" %s=%.2fms", t.stage.c_str(), t.ms);
    std::printf("\n");
  }
  if (!warm_results.empty() && warm_results.front().has_value()) {
    std::printf("warm per-kernel stages:");
    for (const auto &t : warm_results.front()->timings)
      std::printf(" %s=%.2fms", t.stage.c_str(), t.ms);
    std::printf("\n");
  }

  // (c) One-kernel edit: only bench_k3's passes re-run.
  std::vector<everest::sdk::CompileJob> edited = jobs;
  edited[3].source = compile_bench_source(100);
  const std::int64_t content_hits_before = cache.hits();
  const std::int64_t pass_misses_before = cache.pass_tier().misses();
  const std::int64_t pass_hits_before = cache.pass_tier().hits();
  auto edited_results = cached_bc.compile_many(edited, 1);
  bool edited_ok = true;
  for (const auto &r : edited_results) edited_ok = edited_ok && r.has_value();
  const std::int64_t content_hits_delta = cache.hits() - content_hits_before;
  const std::int64_t pass_misses_delta =
      cache.pass_tier().misses() - pass_misses_before;
  const std::int64_t pass_hits_delta =
      cache.pass_tier().hits() - pass_hits_before;
  // Unchanged kernels replay from the content tier and never reach the pass
  // pipeline; the edited kernel re-runs exactly its one canonicalize pass.
  bool edit_incremental = edited_ok && content_hits_delta == kKernels - 1 &&
                          pass_misses_delta == 1 && pass_hits_delta == 0;

  {
    auto c = everest::support::Json::object();
    c.set("kernels", static_cast<std::int64_t>(kKernels));
    c.set("serial_cold_ms", compile_serial_ms);
    c.set("parallel_cold_ms", compile_parallel_ms);
    c.set("parallel_speedup", compile_parallel_speedup);
    c.set("parallel_target_speedup", parallel_target);
    c.set("hardware_concurrency", static_cast<std::int64_t>(hw_cores));
    c.set("parallel_byte_identical", compile_parallel_identical);
    c.set("cached_cold_ms", compile_cold_ms);
    c.set("incremental_ms", compile_warm_ms);
    c.set("incremental_speedup", incremental_speedup);
    c.set("incremental_byte_identical", compile_warm_identical);
    cjson.set("compile_many", std::move(c));
    auto e = everest::support::Json::object();
    e.set("edited_kernel", "bench_k3");
    e.set("content_hits_delta", content_hits_delta);
    e.set("content_hits_expected", static_cast<std::int64_t>(kKernels - 1));
    e.set("pass_misses_delta", pass_misses_delta);
    e.set("pass_misses_expected", static_cast<std::int64_t>(1));
    e.set("pass_hits_delta", pass_hits_delta);
    e.set("only_edited_kernel_recompiled", edit_incremental);
    cjson.set("one_kernel_edit", std::move(e));
  }
  std::printf("compile_many (%d kernels): serial %.1fms, parallel %.1fms "
              "(%.2fx), incremental %.1fms (%.1fx)%s\n",
              kKernels, compile_serial_ms, compile_parallel_ms,
              compile_parallel_speedup, compile_warm_ms, incremental_speedup,
              compile_warm_identical ? "" : " DIVERGED");
  std::printf("one-kernel edit: content hits %lld/%d, pass misses %lld "
              "(expect 1) -> %s\n",
              static_cast<long long>(content_hits_delta), kKernels - 1,
              static_cast<long long>(pass_misses_delta),
              edit_incremental ? "only the edited kernel recompiled"
                               : "INVARIANT VIOLATED");

  bool compile_ok = pass_ok && pass_identical && clone_ok &&
                    compile_parallel_identical && compile_warm_identical &&
                    compile_parallel_speedup >= parallel_target &&
                    incremental_speedup >= 3.0 && edit_incremental;
  cjson.set("target_speedup", 3.0);
  cjson.set("pass_pipeline_ok", pass_ok);
  cjson.set("ok", compile_ok);
  std::ofstream cout_file("BENCH_compile.json");
  cout_file << cjson.dump(2) << "\n";
  cout_file.close();
  std::printf("wrote BENCH_compile.json\n");

  return (all_identical && chain_ratio >= 2.0 && compile_ok) ? 0 : 1;
}
