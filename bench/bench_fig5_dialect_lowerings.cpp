// F5 (paper Fig. 5): the EVEREST dialect stack and its lowering paths.
// Regenerates the figure as executable evidence: every frontend enters the
// MLIR-like stack, every lowering path verifies, and the esn contraction
// reordering (the compiler-level optimization the stack decouples) is
// measured against the naive order.
//
// The trailing bench_rewrite section compares the worklist rewrite driver
// against the legacy full-module sweep on EKL->TeIL modules (ops visited and
// wall clock), asserts the two produce byte-identical modules, and writes
// BENCH_rewrite.json.

#include <chrono>
#include <cstdio>
#include <fstream>

#include "dialects/registry.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "numerics/tensor.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "transforms/canonicalize.hpp"
#include "transforms/cfdlang_to_teil.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"
#include "usecases/traffic.hpp"

namespace et = everest::transforms;
namespace rr = everest::usecases::rrtmg;

namespace {

/// An EKL kernel shaped to stress the rewrite drivers: a 16-deep chain of
/// literal arithmetic (constant folding cascades), a 24-deep chain of ops
/// whose results are never output (dead-code cascades), and one live output.
/// The legacy sweep pays a full module walk per cascade step; the worklist
/// driver unwinds both chains by re-enqueueing only affected ops.
std::string rewrite_stress_source() {
  std::string src = "kernel rewrite_stress\nindex i\ninput a[i]\n";
  src += "c0 = 1.5 * 2.0\n";
  for (int k = 1; k < 16; ++k) {
    src += "c" + std::to_string(k) + " = c" + std::to_string(k - 1) +
           (k % 2 == 0 ? " * 1.5\n" : " + 1.0\n");
  }
  src += "d0 = a[i] + 1.0\n";
  for (int k = 1; k < 24; ++k) {
    src += "d" + std::to_string(k) + " = d" + std::to_string(k - 1) +
           (k % 2 == 0 ? " + 0.5\n" : " * 2.0\n");
  }
  src += "t = a[i] * c15\noutput t\n";
  return src;
}

struct DriverRun {
  everest::ir::RewriteStats stats;
  double wall_us = 0.0;  // best of repetitions
  std::string printed;   // module text after the run
};

/// Runs the full canonicalize pattern set to fixpoint on clones of `teil`
/// under one driver; wall time is the best of `reps` runs.
DriverRun run_driver(const everest::ir::Module &teil,
                     everest::ir::RewriteDriver driver, int reps) {
  DriverRun run;
  auto patterns = et::canonicalize_patterns();
  for (int r = 0; r < reps; ++r) {
    auto copy = everest::ir::clone_module(teil);
    auto start = std::chrono::steady_clock::now();
    auto stats = everest::ir::apply_patterns_greedily(*copy, patterns,
                                                      /*max_iterations=*/64,
                                                      driver);
    auto stop = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(stop - start).count();
    if (r == 0 || us < run.wall_us) run.wall_us = us;
    if (r == 0) {
      run.stats = stats;
      run.printed = copy->str();
    }
  }
  return run;
}

}  // namespace

int main() {
  std::printf("== F5: dialect lowering paths (Fig. 5) ==\n\n");
  everest::ir::Context ctx;
  everest::dialects::register_everest_dialects(ctx);

  std::printf("registered dialects:");
  for (const auto &name : ctx.dialect_names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  everest::support::Table paths({"path", "ops in", "ops out", "verified"});
  auto verified = [&](const everest::ir::Module &m) {
    return ctx.verify(m).is_ok() ? "yes" : "NO";
  };

  // ekl -> teil -> loops.
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto ekl = everest::frontend::parse_ekl(rr::ekl_source()).value();
  auto teil = et::lower_ekl_to_teil(*ekl, rr::bindings(data)).value();
  paths.add_row({"ekl -> teil", std::to_string(ekl->op_count()),
                 std::to_string(teil->op_count()), verified(*teil)});
  auto loops = et::lower_teil_to_loops(*teil).value();
  paths.add_row({"teil -> scf/memref loops", std::to_string(teil->op_count()),
                 std::to_string(loops->op_count()), verified(*loops)});

  // cfdlang -> teil.
  auto cfd = everest::frontend::parse_cfdlang(R"(
program helmholtz
input A : [8, 8]
input B : [8, 8]
output C = contract(outer(A, B), 1, 2)
)").value();
  auto cfd_teil = et::lower_cfdlang_to_teil(*cfd).value();
  paths.add_row({"cfdlang -> teil", std::to_string(cfd->op_count()),
                 std::to_string(cfd_teil->op_count()), verified(*cfd_teil)});

  // condrust -> dfg.
  auto dfg = everest::frontend::parse_condrust(
                 everest::usecases::traffic::mapmatch_condrust_source())
                 .value();
  paths.add_row({"condrust -> dfg", "-", std::to_string(dfg->op_count()),
                 verified(*dfg)});

  // teil -> esn -> teil (contraction raising + lowering).
  auto chain = everest::frontend::parse_ekl(R"(
kernel chain
index i, j, k, l
input a[i, j]
input b[j, k]
input c[k, l]
r = sum(j, k) a[i, j] * b[j, k] * c[k, l]
output r
)").value();
  et::EklBindings bind;
  bind.inputs.emplace("a", everest::numerics::Tensor({48, 64}));
  bind.inputs.emplace("b", everest::numerics::Tensor({64, 32}));
  bind.inputs.emplace("c", everest::numerics::Tensor({32, 8}));
  auto chain_teil = et::lower_ekl_to_teil(*chain, bind).value();
  std::size_t raised = et::extract_einsums(*chain_teil);
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"teil -> esn (einsums raised)", "-", std::to_string(raised),
                 verified(*chain_teil)});

  auto einsum = chain_teil->find_all("esn.einsum").at(0);
  auto naive = et::plan_einsum(*einsum, false);
  auto greedy = et::plan_einsum(*einsum, true);
  double esn_flops = et::lower_esn(*chain_teil, true).value();
  (void)esn_flops;
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"esn -> teil.contract chain", "-",
                 std::to_string(chain_teil->op_count()),
                 verified(*chain_teil)});
  std::printf("%s\n", paths.render().c_str());

  everest::support::Table esn({"contraction order", "estimated flops"});
  char n[32], g[32];
  std::snprintf(n, sizeof n, "%.0f", naive.estimated_flops);
  std::snprintf(g, sizeof g, "%.0f", greedy.estimated_flops);
  esn.add_row({"naive left-to-right", n});
  esn.add_row({"esn greedy reorder", g});
  std::printf("%s\nshape: greedy < naive when the chain has a small late "
              "operand.\n\n",
              esn.render().c_str());

  // ---- bench_rewrite: worklist vs legacy sweep on EKL->TeIL->loops ----
  std::printf("== bench_rewrite: worklist vs legacy sweep ==\n\n");
  everest::support::Table rw({"module", "ops", "visits wl", "visits legacy",
                              "ratio", "us wl", "us legacy", "identical"});
  auto json = everest::support::Json::object();
  json.set("bench", "rewrite");
  json.set("pattern_set", "canonicalize");
  auto cases = everest::support::Json::array();
  bool all_identical = true;
  double chain_ratio = 0.0;

  struct Case {
    const char *name;
    std::shared_ptr<everest::ir::Module> teil;
  };
  auto stress_ekl =
      everest::frontend::parse_ekl(rewrite_stress_source()).value();
  et::EklBindings stress_bind;
  stress_bind.inputs.emplace("a", everest::numerics::Tensor({64}));
  auto stress_teil = et::lower_ekl_to_teil(*stress_ekl, stress_bind).value();
  for (const Case &c :
       {Case{"rrtmg_major", teil}, Case{"rewrite_stress", stress_teil}}) {
    DriverRun wl = run_driver(*c.teil, everest::ir::RewriteDriver::Worklist, 25);
    DriverRun legacy =
        run_driver(*c.teil, everest::ir::RewriteDriver::LegacySweep, 25);
    bool identical = wl.printed == legacy.printed &&
                     wl.stats.rewrites == legacy.stats.rewrites;
    all_identical = all_identical && identical;
    double ratio = wl.stats.ops_visited > 0
                       ? static_cast<double>(legacy.stats.ops_visited) /
                             static_cast<double>(wl.stats.ops_visited)
                       : 0.0;
    if (std::string(c.name) == "rewrite_stress") chain_ratio = ratio;
    // Confirm the canonicalized module still lowers down the chain.
    auto copy = everest::ir::clone_module(*c.teil);
    (void)et::canonicalize(*copy);
    auto lowered = et::lower_teil_to_loops(*copy);
    char ratio_s[32];
    std::snprintf(ratio_s, sizeof ratio_s, "%.2fx", ratio);
    char wl_us[32], lg_us[32];
    std::snprintf(wl_us, sizeof wl_us, "%.1f", wl.wall_us);
    std::snprintf(lg_us, sizeof lg_us, "%.1f", legacy.wall_us);
    rw.add_row({c.name, std::to_string(c.teil->op_count()),
                std::to_string(wl.stats.ops_visited),
                std::to_string(legacy.stats.ops_visited), ratio_s, wl_us,
                lg_us, identical ? "yes" : "NO"});

    auto entry = everest::support::Json::object();
    entry.set("module", c.name);
    entry.set("module_ops", c.teil->op_count());
    entry.set("byte_identical", identical);
    entry.set("visit_ratio", ratio);
    entry.set("wall_speedup",
              wl.wall_us > 0.0 ? legacy.wall_us / wl.wall_us : 0.0);
    entry.set("lowers_to_loops", lowered.has_value());
    auto side = [](const DriverRun &r) {
      auto o = everest::support::Json::object();
      o.set("ops_visited", r.stats.ops_visited);
      o.set("rewrites", r.stats.rewrites);
      o.set("iterations", r.stats.iterations);
      o.set("worklist_pushes", r.stats.worklist_pushes);
      o.set("converged", r.stats.converged);
      o.set("wall_us", r.wall_us);
      return o;
    };
    entry.set("worklist", side(wl));
    entry.set("legacy_sweep", side(legacy));
    cases.push_back(std::move(entry));
  }
  json.set("cases", std::move(cases));
  std::printf("%s\n", rw.render().c_str());
  std::printf("chain visit ratio (legacy/worklist): %.2fx%s; outputs %s\n",
              chain_ratio, chain_ratio >= 2.0 ? " (>= 2x)" : " (< 2x!)",
              all_identical ? "byte-identical" : "DIVERGED");

  std::ofstream out("BENCH_rewrite.json");
  out << json.dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_rewrite.json\n");
  return (all_identical && chain_ratio >= 2.0) ? 0 : 1;
}
