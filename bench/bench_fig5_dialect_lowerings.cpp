// F5 (paper Fig. 5): the EVEREST dialect stack and its lowering paths.
// Regenerates the figure as executable evidence: every frontend enters the
// MLIR-like stack, every lowering path verifies, and the esn contraction
// reordering (the compiler-level optimization the stack decouples) is
// measured against the naive order.

#include <cstdio>

#include "dialects/registry.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/condrust_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "numerics/tensor.hpp"
#include "support/table.hpp"
#include "transforms/cfdlang_to_teil.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "transforms/teil_to_loops.hpp"
#include "usecases/rrtmg.hpp"
#include "usecases/traffic.hpp"

namespace et = everest::transforms;
namespace rr = everest::usecases::rrtmg;

int main() {
  std::printf("== F5: dialect lowering paths (Fig. 5) ==\n\n");
  everest::ir::Context ctx;
  everest::dialects::register_everest_dialects(ctx);

  std::printf("registered dialects:");
  for (const auto &name : ctx.dialect_names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  everest::support::Table paths({"path", "ops in", "ops out", "verified"});
  auto verified = [&](const everest::ir::Module &m) {
    return ctx.verify(m).is_ok() ? "yes" : "NO";
  };

  // ekl -> teil -> loops.
  rr::Config cfg;
  cfg.ncells = 32;
  rr::Data data = rr::make_data(cfg);
  auto ekl = everest::frontend::parse_ekl(rr::ekl_source()).value();
  auto teil = et::lower_ekl_to_teil(*ekl, rr::bindings(data)).value();
  paths.add_row({"ekl -> teil", std::to_string(ekl->op_count()),
                 std::to_string(teil->op_count()), verified(*teil)});
  auto loops = et::lower_teil_to_loops(*teil).value();
  paths.add_row({"teil -> scf/memref loops", std::to_string(teil->op_count()),
                 std::to_string(loops->op_count()), verified(*loops)});

  // cfdlang -> teil.
  auto cfd = everest::frontend::parse_cfdlang(R"(
program helmholtz
input A : [8, 8]
input B : [8, 8]
output C = contract(outer(A, B), 1, 2)
)").value();
  auto cfd_teil = et::lower_cfdlang_to_teil(*cfd).value();
  paths.add_row({"cfdlang -> teil", std::to_string(cfd->op_count()),
                 std::to_string(cfd_teil->op_count()), verified(*cfd_teil)});

  // condrust -> dfg.
  auto dfg = everest::frontend::parse_condrust(
                 everest::usecases::traffic::mapmatch_condrust_source())
                 .value();
  paths.add_row({"condrust -> dfg", "-", std::to_string(dfg->op_count()),
                 verified(*dfg)});

  // teil -> esn -> teil (contraction raising + lowering).
  auto chain = everest::frontend::parse_ekl(R"(
kernel chain
index i, j, k, l
input a[i, j]
input b[j, k]
input c[k, l]
r = sum(j, k) a[i, j] * b[j, k] * c[k, l]
output r
)").value();
  et::EklBindings bind;
  bind.inputs.emplace("a", everest::numerics::Tensor({48, 64}));
  bind.inputs.emplace("b", everest::numerics::Tensor({64, 32}));
  bind.inputs.emplace("c", everest::numerics::Tensor({32, 8}));
  auto chain_teil = et::lower_ekl_to_teil(*chain, bind).value();
  std::size_t raised = et::extract_einsums(*chain_teil);
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"teil -> esn (einsums raised)", "-", std::to_string(raised),
                 verified(*chain_teil)});

  auto einsum = chain_teil->find_all("esn.einsum").at(0);
  auto naive = et::plan_einsum(*einsum, false);
  auto greedy = et::plan_einsum(*einsum, true);
  double esn_flops = et::lower_esn(*chain_teil, true).value();
  (void)esn_flops;
  et::eliminate_dead_code(*chain_teil);
  paths.add_row({"esn -> teil.contract chain", "-",
                 std::to_string(chain_teil->op_count()),
                 verified(*chain_teil)});
  std::printf("%s\n", paths.render().c_str());

  everest::support::Table esn({"contraction order", "estimated flops"});
  char n[32], g[32];
  std::snprintf(n, sizeof n, "%.0f", naive.estimated_flops);
  std::snprintf(g, sizeof g, "%.0f", greedy.estimated_flops);
  esn.add_row({"naive left-to-right", n});
  esn.add_row({"esn greedy reorder", g});
  std::printf("%s\nshape: greedy < naive when the chain has a small late "
              "operand.\n",
              esn.render().c_str());
  return 0;
}
